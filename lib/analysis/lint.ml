(* Persistency lint pass: Lifecycle observations -> deduplicated,
   severity-ranked findings.

   The original four lifecycle rules always run; the PM-bug-taxonomy
   classes (double-flush, cross-region ordering, end-of-trace residue,
   missing recovery-path flush) are gated behind [taxonomy] so the
   default pass stays byte-compatible with the v1 analyzer (and the
   fuzzer's seeded pre-pass stays bit-identical). *)

module Instr = Runtime.Instr

type severity = High | Medium | Low

type kind =
  | Unflushed_publish
  | Unfenced_publish
  | Redundant_flush
  | Redundant_fence
  | Double_flush
  | Cross_region_order
  | Unflushed_at_exit
  | Missing_recovery_flush

type phase = [ `Normal | `Recovery ]

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_write_site : Instr.t option;
  f_site : Instr.t;
  mutable f_addr : int;
  f_first_exec : int;
  mutable f_count : int;
}

type key = kind * Instr.t option * Instr.t

type t = {
  fsm : Lifecycle.t;
  uniq : (key, finding) Hashtbl.t;
  taxonomy : bool;
  mutable execs : int;
}

let severity_of = function
  | Unflushed_publish | Missing_recovery_flush -> High
  | Unfenced_publish | Cross_region_order | Unflushed_at_exit -> Medium
  | Redundant_flush | Redundant_fence | Double_flush -> Low

let kind_label = function
  | Unflushed_publish -> "unflushed-store-published"
  | Unfenced_publish -> "flush-without-fence-before-release"
  | Redundant_flush -> "redundant CLWB"
  | Redundant_fence -> "redundant SFENCE"
  | Double_flush -> "double CLWB (no intervening store)"
  | Cross_region_order -> "cross-region durability ordering"
  | Unflushed_at_exit -> "dirty at end of execution"
  | Missing_recovery_flush -> "missing recovery-path flush"

(* Stable metric-label / JSON slugs, one per detector class. *)
let kind_slug = function
  | Unflushed_publish -> "unflushed_publish"
  | Unfenced_publish -> "unfenced_publish"
  | Redundant_flush -> "redundant_flush"
  | Redundant_fence -> "redundant_fence"
  | Double_flush -> "double_flush"
  | Cross_region_order -> "cross_region_order"
  | Unflushed_at_exit -> "unflushed_at_exit"
  | Missing_recovery_flush -> "missing_recovery_flush"

let all_kinds =
  [
    Unflushed_publish;
    Unfenced_publish;
    Redundant_flush;
    Redundant_fence;
    Double_flush;
    Cross_region_order;
    Unflushed_at_exit;
    Missing_recovery_flush;
  ]

let kind_rank k =
  let rec idx n = function
    | [] -> n
    | k' :: rest -> if k = k' then n else idx (n + 1) rest
  in
  idx 0 all_kinds

let create ?(taxonomy = false) ?region_of () =
  {
    fsm = Lifecycle.create ?region_of ();
    uniq = Hashtbl.create 32;
    taxonomy;
    execs = 0;
  }

let record t ~kind ~write_site ~site ~addr =
  let key = (kind, write_site, site) in
  match Hashtbl.find_opt t.uniq key with
  | Some f ->
      f.f_count <- f.f_count + 1;
      (* Keep the smallest sample address, so the stored exemplar does not
         depend on the order traces were absorbed in. *)
      if addr >= 0 && (f.f_addr < 0 || addr < f.f_addr) then f.f_addr <- addr
  | None ->
      Obs.Metrics.incr
        (Obs.Metrics.counter ~labels:[ ("class", kind_slug kind) ] "lint_findings_total");
      Hashtbl.add t.uniq key
        {
          f_kind = kind;
          f_severity = severity_of kind;
          f_write_site = write_site;
          f_site = site;
          f_addr = addr;
          f_first_exec = t.execs;
          f_count = 1;
        }

let on_obs t = function
  | Lifecycle.O_dirty_read { w_site; r_site; addr; _ } ->
      record t ~kind:Unflushed_publish ~write_site:(Some w_site) ~site:r_site ~addr
  | Lifecycle.O_unfenced_read { w_site; r_site; addr; _ } ->
      record t ~kind:Unfenced_publish ~write_site:(Some w_site) ~site:r_site ~addr
  | Lifecycle.O_redundant_flush { f_site; addr } ->
      record t ~kind:Redundant_flush ~write_site:None ~site:f_site ~addr
  | Lifecycle.O_redundant_fence { site } ->
      record t ~kind:Redundant_fence ~write_site:None ~site ~addr:(-1)
  | Lifecycle.O_double_flush { f_site; prev_site; addr } ->
      if t.taxonomy then
        record t ~kind:Double_flush ~write_site:(Some prev_site) ~site:f_site ~addr
  | Lifecycle.O_cross_region_order { early_site; early_addr; late_site; _ } ->
      if t.taxonomy then
        record t ~kind:Cross_region_order ~write_site:(Some early_site) ~site:late_site
          ~addr:early_addr

let absorb ?(phase = `Normal) t events =
  Lifecycle.reset t.fsm;
  t.execs <- t.execs + 1;
  List.iter (Lifecycle.step t.fsm ~emit:(on_obs t)) events;
  (* End-of-trace residue: words still dirty when the run ended.  In a
     recovery run that is the missing-recovery-path-flush class (the
     recovered state is lost at the next crash); in a normal run it is
     the milder dirty-at-exit class. *)
  if t.taxonomy then begin
    let kind =
      match phase with `Normal -> Unflushed_at_exit | `Recovery -> Missing_recovery_flush
    in
    List.iter
      (fun (addr, w_site) -> record t ~kind ~write_site:(Some w_site) ~site:w_site ~addr)
      (Lifecycle.dirty_words t.fsm)
  end

let severity_rank = function High -> 0 | Medium -> 1 | Low -> 2
let sev_rank = severity_rank

let site_rank = function Some i -> Instr.to_int i | None -> -1

(* Total order over dedup keys: (severity, count desc, site, kind,
   write site).  Because no two findings share a key, the sort is a
   permutation-independent function of the finding *set* — absorbing the
   same traces in any order yields the same list. *)
let findings t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.uniq []
  |> List.sort (fun a b ->
         compare
           ( sev_rank a.f_severity,
             b.f_count,
             Instr.to_int a.f_site,
             kind_rank a.f_kind,
             site_rank a.f_write_site )
           ( sev_rank b.f_severity,
             a.f_count,
             Instr.to_int b.f_site,
             kind_rank b.f_kind,
             site_rank b.f_write_site ))

let count t = Hashtbl.length t.uniq

let count_severity t sev =
  Hashtbl.fold (fun _ f n -> if f.f_severity = sev then n + 1 else n) t.uniq 0

let count_kind t kind =
  Hashtbl.fold (fun _ f n -> if f.f_kind = kind then n + 1 else n) t.uniq 0

let pp_severity ppf = function
  | High -> Fmt.string ppf "HIGH"
  | Medium -> Fmt.string ppf "MEDIUM"
  | Low -> Fmt.string ppf "LOW"

let pp_finding ppf f =
  Fmt.pf ppf "[%a] %s: %a%s (%d occurrence%s%s)" pp_severity f.f_severity (kind_label f.f_kind)
    Instr.pp f.f_site
    (match f.f_write_site with
    | Some w when not (Instr.equal w f.f_site) -> Printf.sprintf " <- store at %s" (Instr.name w)
    | Some _ | None -> "")
    f.f_count
    (if f.f_count = 1 then "" else "s")
    (if f.f_addr >= 0 then Printf.sprintf ", e.g. PM word %d" f.f_addr else "")

(** Offline persistency analyzer: the orchestration layer.

    Feed it the recorded event streams of a set of seed executions
    ({!Runtime.Trace}); it builds the {!Site_graph}, computes the
    statically-possible alias pairs with achieved accounting
    ({!Alias_pairs}), and runs the {!Lint} pass — one consumer pass per
    trace, all offline. *)

type t

type result = {
  r_graph : Site_graph.t;
  r_pairs : Alias_pairs.t;
  r_findings : Lint.finding list;
  r_executions : int;
}

val create : unit -> t

val absorb : t -> Runtime.Env.event list -> unit
(** Analyse one execution's recorded event stream. *)

val absorb_trace : t -> Runtime.Trace.t -> unit

val result : t -> result
(** Snapshot the analysis: possible pairs come from the site graph,
    achieved pairs from the cross-thread dirty reads the lint FSM
    observed, so achieved is always a subset of possible. *)

val pp_report : Format.formatter -> result -> unit
(** The [pmrace analyze] report: site-graph summary, alias coverage as
    achieved/possible, and the deduplicated findings. *)

(** Offline persistency analyzer: the orchestration layer.

    Feed it the recorded event streams of a set of seed executions
    ({!Runtime.Trace}); it builds the {!Site_graph}, computes the
    statically-possible alias pairs with achieved accounting
    ({!Alias_pairs}), runs the {!Lint} pass, and — when enabled — mines
    likely persistence-ordering invariants ({!Invariants}); one consumer
    pass per trace, all offline.

    The second-generation detectors are gated by {!config} and default
    OFF: {!default_config} reproduces the original analyzer exactly,
    which keeps the fuzzer's seeded static pre-pass bit-identical with
    the pinned goldens.  {!full} turns everything on. *)

type config = {
  taxonomy : bool;  (** PM-bug-taxonomy lint classes (see {!Lint.kind}) *)
  invariants : bool;  (** likely-invariant mining *)
  min_support : int;  (** support threshold handed to {!Invariants.create} *)
  region_of : (int -> int) option;
      (** pool-region classifier for the cross-region ordering detector *)
}

val default_config : config
(** Everything off — byte-identical behaviour to the v1 analyzer. *)

val full : config
(** Taxonomy + invariants on ([min_support] 2, no region map — callers
    supply one when the pool layout is known). *)

type t

type result = {
  r_graph : Site_graph.t;
  r_pairs : Alias_pairs.t;
  r_findings : Lint.finding list;
  r_invariants : Invariants.spec list;  (** mined specs; [[]] when mining is off *)
  r_executions : int;
}

val create : ?cfg:config -> unit -> t
val config : t -> config

val absorb : t -> Runtime.Env.event list -> unit
(** Analyse one execution's recorded event stream. *)

val absorb_trace : t -> Runtime.Trace.t -> unit

val absorb_recovery : t -> Runtime.Env.event list -> unit
(** Lint a recovery run's event stream in recovery phase, so that
    end-of-trace dirty residue becomes the missing-recovery-flush class.
    No-op unless the config enables taxonomy; never feeds the site graph
    or invariant mining. *)

val result : t -> result
(** Snapshot the analysis: possible pairs come from the site graph,
    achieved pairs from the cross-thread dirty reads the lint FSM
    observed, so achieved is always a subset of possible. *)

val pp_report : Format.formatter -> result -> unit
(** The [pmrace analyze] report: site-graph summary, alias coverage as
    achieved/possible, the deduplicated findings with per-class counts,
    and the mined invariant set when non-empty. *)

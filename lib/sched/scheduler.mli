(** Deterministic cooperative scheduler (OCaml 5 effect handlers).

    Simulated threads are fibers that {!yield} at every instrumented
    operation; the scheduler picks the next runnable fiber with a seeded
    {!Rng.t}, so every interleaving is replayable from its seed.  Fibers
    still suspended when the step budget runs out are killed and reported
    as hung — this is how lock hangs surface in the reproduction. *)

exception Killed
(** Raised inside a fiber killed at budget exhaustion. *)

type t

type outcome = {
  steps : int;  (** scheduling decisions taken *)
  finished : int list;  (** tids that ran to completion *)
  hung : (int * string) list;  (** tids (and names) killed at budget *)
  failed : (int * string * exn) list;  (** tids that raised *)
}

val create : ?step_budget:int -> rng:Rng.t -> unit -> t
(** [step_budget] bounds the number of scheduling decisions (default
    200_000); exhausting it classifies surviving fibers as hung. *)

val spawn : t -> name:string -> (unit -> unit) -> int
(** Register a fiber; returns its tid (dense, starting at 0).  All fibers
    must be spawned before {!run}. *)

val yield : unit -> unit
(** Give up the processor.  Must be called from inside a fiber executed by
    {!run}; the runtime calls it at every preemption point. *)

val run : ?on_step:(int -> unit) -> t -> outcome
(** Execute all fibers to completion, failure, or budget exhaustion.
    [on_step tid] is invoked before every scheduling step.

    The per-step cost is O(1) amortized in the number of fibers: the
    runnable set is a maintained spawn-ordered index array, not a list
    rebuilt every step.  The RNG stream and the resulting schedule are
    bit-identical to {!run_reference} (pinned by a property test), so
    seeded interleavings are stable across the optimisation.

    Metrics (when {!Obs.Metrics.enabled}): records the per-run step
    {e delta} into [sched_steps_total]/[sched_steps_per_run] — a reused
    scheduler value never double-counts — and samples the mean wall time
    per step into the [sched_step_seconds] histogram every 64th step. *)

val run_reference : ?on_step:(int -> unit) -> t -> outcome
(** The legacy scheduling loop (rebuild-and-filter the runnable list every
    step, list-based {!Rng.pick}), kept as an executable specification of
    {!run}: same RNG stream, same schedule, same outcome — only the
    per-step cost differs (O(fibers) instead of O(1)).  Used by the
    stream-compatibility tests and the [hotpath] bench; not for
    production callers. *)

(** {2 Partial-order reduction}

    An opt-in pruning mode.  {!run} and {!run_reference} are untouched:
    with POR off, seeded schedules stay bit-identical to before. *)

type por = {
  pending : int array;
      (** [pending.(tid)] — footprint of the op the fiber will execute
          when next resumed, or [0] when unknown.  Footprints are opaque
          ints ({!Runtime.Footprint} encodes them); the scheduler never
          inspects them beyond equality with [0].  The recorder writes
          the array in place; fibers with tids beyond its length count
          as unknown. *)
  step_fp : int array;
      (** A single shared cell: footprint of the op(s) the last step
          executed, [0] for a step that ran nothing instrumented.  The
          scheduler reads and clears it after every step.  An array
          rather than a closure pair: most steps execute nothing
          instrumented, and two indirect calls per step to learn that
          cost more than the rest of the pick loop. *)
  independent : int -> int -> bool;
      (** Whether two adjacent steps with these footprints commute. *)
  spin : int -> int -> bool;
      (** [spin executed pending] — the stepped fiber is busy-wait
          retrying the op it just executed (a failed CAS;
          {!Runtime.Footprint.spin_retry}).  {!run_por} parks such a
          fiber until a conflicting access wakes it, so a spinner cannot
          burn the step budget while the lock holder sleeps. *)
}
(** The scheduler's whole view of the runtime for pruning, int-encoded so
    [lib/sched] keeps its dependency footprint ([fmt obs] only). *)

type por_stats = { mutable pruned_picks : int; mutable forced_wakes : int }
(** [pruned_picks]: candidate picks suppressed by sleep sets, summed over
    steps; [forced_wakes]: times the whole runnable set was asleep and had
    to be woken to make progress. *)

val run_por : ?on_step:(int -> unit) -> por:por -> t -> outcome * por_stats
(** Like {!run} but with sleep-set pruning: after each step, runnable
    fibers whose pending op commutes with the executed footprint (and
    whose tid orders below the stepped fiber's — the canonical
    representative of the Mazurkiewicz class runs lower tids first among
    commuting ops) are put to sleep and excluded from the pick until a
    dependent access wakes them.  A fiber that busy-wait retries the op
    it just executed ([por.spin], a failed CAS) is itself parked until a
    conflicting access wakes it.  Draws one [Rng.int] per step like
    {!run}, but over the awake subset, so the RNG stream {e differs} from
    [run] — POR sessions are seed-reproducible against [run_por] itself,
    not against [run].  The pruning is a heuristic over instrumented
    accesses only; POR property tests pin that found-bug sets match
    unpruned runs on the planted workloads.  Per-step maintenance is
    allocation-free (preallocated sleep bits / candidate scratch, a live
    sleeper count skips the candidate pass when nobody sleeps), and the
    candidate set is cached between sleep-state changes, so a step that
    executed nothing instrumented costs like a {!run} step. *)

val steps : t -> int
val fiber_count : t -> int

val completed : outcome -> bool
(** No hung and no failed fibers. *)

val pp_outcome : Format.formatter -> outcome -> unit

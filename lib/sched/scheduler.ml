(* Deterministic cooperative scheduler built on OCaml 5 effect handlers.

   Simulated threads are fibers that call [yield] at every instrumented
   operation (the preemption points of §4.2.2).  The scheduler picks the
   next runnable fiber with a seeded RNG, so a (seed, program) pair always
   produces the same interleaving — buggy interleavings found by the fuzzer
   are replayable.

   A fiber that exceeds neither budget nor failure runs to completion.  When
   the step budget is exhausted with fibers still suspended, those fibers
   are killed (their continuations are discontinued so resources unwind) and
   reported as hung — this is how lock-related hangs (paper bugs 2, 5, 6)
   surface. *)

exception Killed
(* Raised inside a fiber when the scheduler kills it at budget exhaustion. *)

type _ Effect.t += Yield : unit Effect.t

type resumption =
  | Finished
  | Failed of exn
  | Yielded of (unit, resumption) Effect.Deep.continuation

type fstate =
  | Not_started of (unit -> unit)
  | Suspended of (unit, resumption) Effect.Deep.continuation
  | Done
  | Crashed of exn

type fiber = { tid : int; name : string; mutable state : fstate }

type outcome = {
  steps : int;
  finished : int list;
  hung : (int * string) list;
  failed : (int * string * exn) list;
}

type t = {
  rng : Rng.t;
  step_budget : int;
  mutable fibers : fiber list; (* reverse spawn order *)
  mutable count : int;
  mutable steps : int;
  mutable running : bool;
}

let create ?(step_budget = 200_000) ~rng () =
  { rng; step_budget; fibers = []; count = 0; steps = 0; running = false }

let spawn t ~name body =
  if t.running then invalid_arg "Sched.spawn: cannot spawn while running";
  let tid = t.count in
  t.count <- t.count + 1;
  t.fibers <- { tid; name; state = Not_started body } :: t.fibers;
  tid

let yield () = Effect.perform Yield

let handler : (unit, resumption) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc = (fun e -> Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some (fun (k : (a, resumption) Effect.Deep.continuation) -> Yielded k)
        | _ -> None);
  }

let start body = Effect.Deep.match_with body () handler
let resume k = Effect.Deep.continue k ()

let steps t = t.steps
let fiber_count t = t.count

(* Per-run step accounting, recorded once at the end of [run] (not per
   step) so the scheduler loop itself stays metric-free.  [t.steps] is
   cumulative across runs (the budget and [outcome.steps] observe it), so
   the metrics record the per-run *delta*, never the running total. *)
let m_steps_total = lazy (Obs.Metrics.counter "sched_steps_total")

let m_steps_per_run =
  lazy
    (Obs.Metrics.histogram
       ~buckets:[| 50.; 200.; 1_000.; 5_000.; 20_000.; 60_000.; 200_000. |]
       "sched_steps_per_run")

let m_hung_fibers = lazy (Obs.Metrics.counter "sched_hung_fibers_total")

(* Mean wall seconds per scheduling step (including the fiber's own work
   between preemption points), sampled once every [sample_interval] steps
   so the hot loop pays one clock read per 64 steps, not per step. *)
let m_step_seconds =
  lazy
    (Obs.Metrics.histogram
       ~buckets:[| 2e-7; 5e-7; 1e-6; 2e-6; 5e-6; 1e-5; 5e-5; 2e-4 |]
       "sched_step_seconds")

let sample_interval = 64 (* power of two: the sample test is a mask *)

let record f = function
  | Finished -> f.state <- Done
  | Failed e -> f.state <- Crashed e
  | Yielded k -> f.state <- Suspended k

(* Step one fiber: run it to its next preemption point (or completion /
   failure) and fold the resumption back into its state. *)
let step_fiber f =
  let r =
    match f.state with
    | Not_started body ->
        f.state <- Done (* placeholder; overwritten below *);
        start body
    | Suspended k ->
        f.state <- Done;
        resume k
    | Done | Crashed _ -> assert false
  in
  record f r

(* Kill whatever is still suspended (budget exhausted), then assemble the
   outcome and record the per-run metric deltas.  Shared by [run] and
   [run_reference] so the two paths differ only in how they pick. *)
let finish t ~steps_before fibers =
  let hung = ref [] in
  Array.iter
    (fun f ->
      match f.state with
      | Suspended k ->
          hung := (f.tid, f.name) :: !hung;
          (* Unwind the fiber so its resources are released; we ignore the
             result — the fiber is dead either way. *)
          (try ignore (Effect.Deep.discontinue k Killed) with _ -> ());
          f.state <- Crashed Killed
      | Not_started _ ->
          hung := (f.tid, f.name) :: !hung;
          f.state <- Crashed Killed
      | Done | Crashed _ -> ())
    fibers;
  let finished, failed =
    Array.fold_left
      (fun (fin, fail) f ->
        match f.state with
        | Done -> (f.tid :: fin, fail)
        | Crashed Killed -> (fin, fail)
        | Crashed e -> (fin, (f.tid, f.name, e) :: fail)
        | Not_started _ | Suspended _ -> assert false)
      ([], []) fibers
  in
  t.running <- false;
  if Obs.Metrics.enabled () then begin
    let delta = t.steps - steps_before in
    Obs.Metrics.incr ~by:delta (Lazy.force m_steps_total);
    Obs.Metrics.observe (Lazy.force m_steps_per_run) (float_of_int delta);
    Obs.Metrics.incr ~by:(List.length !hung) (Lazy.force m_hung_fibers)
  end;
  {
    steps = t.steps;
    finished = List.rev finished;
    hung = List.rev !hung;
    failed = List.rev failed;
  }

(* The hot loop.  The runnable set is a maintained index array in spawn
   order: picking is one [Rng.int] draw and one array read, and a fiber
   that finishes or crashes is removed with an order-preserving shift.
   Removal must preserve spawn order — a swap-with-last would keep the
   RNG *stream* identical (the draw bound is the same) but change which
   fiber each drawn index denotes, silently changing every interleaving.
   Shifts cost O(runnable), but there are at most [fiber_count] of them
   per run, so the per-step cost is O(1) amortized where the old loop
   rebuilt and filtered the whole fiber list every step.

   RNG-stream invariant (pinned by test_scheduler's compatibility
   property): [Rng.pick rng rs] is [List.nth rs (Rng.int rng (length rs))],
   so drawing [Rng.int rng n_runnable] and indexing the spawn-ordered
   runnable array consumes the identical stream and picks the identical
   fiber the legacy list-based loop did. *)
let run ?on_step t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let steps_before = t.steps in
  let fibers = Array.of_list (List.rev t.fibers) in
  let runnable = Array.make (max 1 (Array.length fibers)) 0 in
  let n_runnable = ref 0 in
  Array.iteri
    (fun i f ->
      match f.state with
      | Not_started _ | Suspended _ ->
          runnable.(!n_runnable) <- i;
          incr n_runnable
      | Done | Crashed _ -> ())
    fibers;
  let sampling = Obs.Metrics.enabled () in
  let sample_anchor = ref (if sampling then Obs.Clock.now () else 0.) in
  let rec loop () =
    if !n_runnable > 0 && t.steps < t.step_budget then begin
      let i = Rng.int t.rng !n_runnable in
      let f = fibers.(runnable.(i)) in
      t.steps <- t.steps + 1;
      (match on_step with Some g -> g f.tid | None -> ());
      step_fiber f;
      (match f.state with
      | Done | Crashed _ ->
          Array.blit runnable (i + 1) runnable i (!n_runnable - i - 1);
          decr n_runnable
      | Not_started _ | Suspended _ -> ());
      if sampling && (t.steps - steps_before) land (sample_interval - 1) = 0 then begin
        let now = Obs.Clock.now () in
        Obs.Metrics.observe (Lazy.force m_step_seconds)
          ((now -. !sample_anchor) /. float_of_int sample_interval);
        sample_anchor := now
      end;
      loop ()
    end
  in
  loop ();
  finish t ~steps_before fibers

(* The legacy loop, kept verbatim as an executable specification: it
   rebuilds the runnable list from scratch every step and picks with the
   list-based [Rng.pick].  [run] must consume the identical RNG stream and
   produce the identical schedule; tests assert it and the hotpath bench
   measures the gap.  Do not optimise this. *)
let run_reference ?on_step t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let steps_before = t.steps in
  let fibers = Array.of_list (List.rev t.fibers) in
  let runnable () =
    Array.to_list fibers
    |> List.filter (fun f ->
           match f.state with Not_started _ | Suspended _ -> true | Done | Crashed _ -> false)
  in
  let rec loop () =
    match runnable () with
    | [] -> ()
    | rs ->
        if t.steps >= t.step_budget then ()
        else begin
          let f = Rng.pick t.rng rs in
          t.steps <- t.steps + 1;
          (match on_step with Some g -> g f.tid | None -> ());
          step_fiber f;
          loop ()
        end
  in
  loop ();
  finish t ~steps_before fibers

(* ------------------------------------------------------------------ *)
(* Partial-order reduction (sleep sets).                               *)
(* ------------------------------------------------------------------ *)

(* POR hooks cross the lib/sched dependency boundary as plain ints: a
   footprint is an opaque int summary of a step's instrumented accesses
   (Runtime.Footprint encodes/decodes it; 0 means "no instrumented op /
   unknown").  The scheduler only needs three operations over them. *)
type por = {
  pending : int -> int;
      (* [pending tid] — footprint of the op the fiber will execute when
         next resumed, or 0 if unknown (not yet at a preemption point). *)
  take_step : unit -> int;
      (* Footprint of the op(s) the step just executed; resets the
         accumulator.  0 for a step that ran no instrumented op. *)
  independent : int -> int -> bool;
}

type por_stats = { mutable pruned_picks : int; mutable forced_wakes : int }

(* The pruning loop.  On top of [run]'s maintained runnable index array
   it keeps a per-fiber sleep bit and the last executed footprint:

   - after stepping fiber [p] with executed footprint [fp], every other
     runnable fiber [q] with a *known* pending footprint independent of
     [fp] and [q.tid < p.tid] is put to sleep: running [q] now would
     produce a schedule Mazurkiewicz-equivalent to one that ran [q]
     before [p] (which the ascending-tid order makes the canonical
     representative), so the pick is redundant;
   - any sleeping fiber whose pending op *conflicts* with [fp] is woken —
     the dependency breaks the commutation argument;
   - steps that executed nothing instrumented (spin iterations) neither
     sleep nor wake anyone;
   - if every runnable fiber is asleep the whole set is force-woken
     (counted in [forced_wakes]) so the run always terminates.

   The picks suppressed each step are counted in [pruned_picks].  The
   pruning is heuristic, not exhaustive DPOR: uninstrumented state
   (DRAM, sync-policy bookkeeping) rides along outside the independence
   relation, so equality of the found-bug sets is pinned empirically by
   the POR property tests rather than proved. *)
let run_por ?on_step ~(por : por) t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let steps_before = t.steps in
  let fibers = Array.of_list (List.rev t.fibers) in
  let n = max 1 (Array.length fibers) in
  let runnable = Array.make n 0 in
  let n_runnable = ref 0 in
  let asleep = Array.make n false in
  let candidates = Array.make n 0 in
  Array.iteri
    (fun i f ->
      match f.state with
      | Not_started _ | Suspended _ ->
          runnable.(!n_runnable) <- i;
          incr n_runnable
      | Done | Crashed _ -> ())
    fibers;
  let stats = { pruned_picks = 0; forced_wakes = 0 } in
  let rec loop () =
    if !n_runnable > 0 && t.steps < t.step_budget then begin
      let n_cand = ref 0 in
      for j = 0 to !n_runnable - 1 do
        let i = runnable.(j) in
        if not asleep.(i) then begin
          candidates.(!n_cand) <- i;
          incr n_cand
        end
      done;
      if !n_cand = 0 then begin
        (* Everyone runnable is asleep: the canonical representative has
           been followed as far as it goes — wake the set and keep
           scheduling rather than deadlock. *)
        stats.forced_wakes <- stats.forced_wakes + 1;
        for j = 0 to !n_runnable - 1 do
          let i = runnable.(j) in
          asleep.(i) <- false;
          candidates.(j) <- i
        done;
        n_cand := !n_runnable
      end;
      stats.pruned_picks <- stats.pruned_picks + (!n_runnable - !n_cand);
      let i = candidates.(Rng.int t.rng !n_cand) in
      let f = fibers.(i) in
      t.steps <- t.steps + 1;
      (match on_step with Some g -> g f.tid | None -> ());
      step_fiber f;
      let fp = por.take_step () in
      if fp <> 0 then
        for j = 0 to !n_runnable - 1 do
          let q = runnable.(j) in
          if q <> i then begin
            let pq = por.pending fibers.(q).tid in
            if pq <> 0 then
              if not (por.independent fp pq) then asleep.(q) <- false
              else if (not asleep.(q)) && fibers.(q).tid < f.tid then asleep.(q) <- true
          end
        done;
      (match f.state with
      | Done | Crashed _ ->
          asleep.(i) <- false;
          (* Order-preserving removal, as in [run]. *)
          let rec find j = if runnable.(j) = i then j else find (j + 1) in
          let j = find 0 in
          Array.blit runnable (j + 1) runnable j (!n_runnable - j - 1);
          decr n_runnable
      | Not_started _ | Suspended _ -> ());
      loop ()
    end
  in
  loop ();
  (finish t ~steps_before fibers, stats)

let completed o = o.hung = [] && o.failed = []

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "steps=%d finished=%d hung=[%a] failed=[%a]" o.steps (List.length o.finished)
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int string))
    o.hung
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int string))
    (List.map (fun (t, n, _) -> (t, n)) o.failed)

(* Deterministic cooperative scheduler built on OCaml 5 effect handlers.

   Simulated threads are fibers that call [yield] at every instrumented
   operation (the preemption points of §4.2.2).  The scheduler picks the
   next runnable fiber with a seeded RNG, so a (seed, program) pair always
   produces the same interleaving — buggy interleavings found by the fuzzer
   are replayable.

   A fiber that exceeds neither budget nor failure runs to completion.  When
   the step budget is exhausted with fibers still suspended, those fibers
   are killed (their continuations are discontinued so resources unwind) and
   reported as hung — this is how lock-related hangs (paper bugs 2, 5, 6)
   surface. *)

exception Killed
(* Raised inside a fiber when the scheduler kills it at budget exhaustion. *)

type _ Effect.t += Yield : unit Effect.t

type resumption =
  | Finished
  | Failed of exn
  | Yielded of (unit, resumption) Effect.Deep.continuation

type fstate =
  | Not_started of (unit -> unit)
  | Suspended of (unit, resumption) Effect.Deep.continuation
  | Done
  | Crashed of exn

type fiber = { tid : int; name : string; mutable state : fstate }

type outcome = {
  steps : int;
  finished : int list;
  hung : (int * string) list;
  failed : (int * string * exn) list;
}

type t = {
  rng : Rng.t;
  step_budget : int;
  mutable fibers : fiber list; (* reverse spawn order *)
  mutable count : int;
  mutable steps : int;
  mutable running : bool;
}

let create ?(step_budget = 200_000) ~rng () =
  { rng; step_budget; fibers = []; count = 0; steps = 0; running = false }

let spawn t ~name body =
  if t.running then invalid_arg "Sched.spawn: cannot spawn while running";
  let tid = t.count in
  t.count <- t.count + 1;
  t.fibers <- { tid; name; state = Not_started body } :: t.fibers;
  tid

let yield () = Effect.perform Yield

let handler : (unit, resumption) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc = (fun e -> Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some (fun (k : (a, resumption) Effect.Deep.continuation) -> Yielded k)
        | _ -> None);
  }

let start body = Effect.Deep.match_with body () handler
let resume k = Effect.Deep.continue k ()

let steps t = t.steps
let fiber_count t = t.count

(* Per-run step accounting, recorded once at the end of [run] (not per
   step) so the scheduler loop itself stays metric-free.  [t.steps] is
   cumulative across runs (the budget and [outcome.steps] observe it), so
   the metrics record the per-run *delta*, never the running total. *)
let m_steps_total = lazy (Obs.Metrics.counter "sched_steps_total")

let m_steps_per_run =
  lazy
    (Obs.Metrics.histogram
       ~buckets:[| 50.; 200.; 1_000.; 5_000.; 20_000.; 60_000.; 200_000. |]
       "sched_steps_per_run")

let m_hung_fibers = lazy (Obs.Metrics.counter "sched_hung_fibers_total")

(* Mean wall seconds per scheduling step (including the fiber's own work
   between preemption points), sampled once every [sample_interval] steps
   so the hot loop pays one clock read per 64 steps, not per step. *)
let m_step_seconds =
  lazy
    (Obs.Metrics.histogram
       ~buckets:[| 2e-7; 5e-7; 1e-6; 2e-6; 5e-6; 1e-5; 5e-5; 2e-4 |]
       "sched_step_seconds")

let sample_interval = 64 (* power of two: the sample test is a mask *)

let record f = function
  | Finished -> f.state <- Done
  | Failed e -> f.state <- Crashed e
  | Yielded k -> f.state <- Suspended k

(* Step one fiber: run it to its next preemption point (or completion /
   failure) and fold the resumption back into its state. *)
let step_fiber f =
  let r =
    match f.state with
    | Not_started body ->
        f.state <- Done (* placeholder; overwritten below *);
        start body
    | Suspended k ->
        f.state <- Done;
        resume k
    | Done | Crashed _ -> assert false
  in
  record f r

(* Kill whatever is still suspended (budget exhausted), then assemble the
   outcome and record the per-run metric deltas.  Shared by [run] and
   [run_reference] so the two paths differ only in how they pick. *)
let finish t ~steps_before fibers =
  let hung = ref [] in
  Array.iter
    (fun f ->
      match f.state with
      | Suspended k ->
          hung := (f.tid, f.name) :: !hung;
          (* Unwind the fiber so its resources are released; we ignore the
             result — the fiber is dead either way. *)
          (try ignore (Effect.Deep.discontinue k Killed) with _ -> ());
          f.state <- Crashed Killed
      | Not_started _ ->
          hung := (f.tid, f.name) :: !hung;
          f.state <- Crashed Killed
      | Done | Crashed _ -> ())
    fibers;
  let finished, failed =
    Array.fold_left
      (fun (fin, fail) f ->
        match f.state with
        | Done -> (f.tid :: fin, fail)
        | Crashed Killed -> (fin, fail)
        | Crashed e -> (fin, (f.tid, f.name, e) :: fail)
        | Not_started _ | Suspended _ -> assert false)
      ([], []) fibers
  in
  t.running <- false;
  if Obs.Metrics.enabled () then begin
    let delta = t.steps - steps_before in
    Obs.Metrics.incr ~by:delta (Lazy.force m_steps_total);
    Obs.Metrics.observe (Lazy.force m_steps_per_run) (float_of_int delta);
    Obs.Metrics.incr ~by:(List.length !hung) (Lazy.force m_hung_fibers)
  end;
  {
    steps = t.steps;
    finished = List.rev finished;
    hung = List.rev !hung;
    failed = List.rev failed;
  }

(* The hot loop.  The runnable set is a maintained index array in spawn
   order: picking is one [Rng.int] draw and one array read, and a fiber
   that finishes or crashes is removed with an order-preserving shift.
   Removal must preserve spawn order — a swap-with-last would keep the
   RNG *stream* identical (the draw bound is the same) but change which
   fiber each drawn index denotes, silently changing every interleaving.
   Shifts cost O(runnable), but there are at most [fiber_count] of them
   per run, so the per-step cost is O(1) amortized where the old loop
   rebuilt and filtered the whole fiber list every step.

   RNG-stream invariant (pinned by test_scheduler's compatibility
   property): [Rng.pick rng rs] is [List.nth rs (Rng.int rng (length rs))],
   so drawing [Rng.int rng n_runnable] and indexing the spawn-ordered
   runnable array consumes the identical stream and picks the identical
   fiber the legacy list-based loop did. *)
let run ?on_step t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let steps_before = t.steps in
  let fibers = Array.of_list (List.rev t.fibers) in
  let runnable = Array.make (max 1 (Array.length fibers)) 0 in
  let n_runnable = ref 0 in
  Array.iteri
    (fun i f ->
      match f.state with
      | Not_started _ | Suspended _ ->
          runnable.(!n_runnable) <- i;
          incr n_runnable
      | Done | Crashed _ -> ())
    fibers;
  let sampling = Obs.Metrics.enabled () in
  let sample_anchor = ref (if sampling then Obs.Clock.now () else 0.) in
  let rec loop () =
    if !n_runnable > 0 && t.steps < t.step_budget then begin
      let i = Rng.int t.rng !n_runnable in
      let f = fibers.(runnable.(i)) in
      t.steps <- t.steps + 1;
      (match on_step with Some g -> g f.tid | None -> ());
      step_fiber f;
      (match f.state with
      | Done | Crashed _ ->
          Array.blit runnable (i + 1) runnable i (!n_runnable - i - 1);
          decr n_runnable
      | Not_started _ | Suspended _ -> ());
      if sampling && (t.steps - steps_before) land (sample_interval - 1) = 0 then begin
        let now = Obs.Clock.now () in
        Obs.Metrics.observe (Lazy.force m_step_seconds)
          ((now -. !sample_anchor) /. float_of_int sample_interval);
        sample_anchor := now
      end;
      loop ()
    end
  in
  loop ();
  finish t ~steps_before fibers

(* The legacy loop, kept verbatim as an executable specification: it
   rebuilds the runnable list from scratch every step and picks with the
   list-based [Rng.pick].  [run] must consume the identical RNG stream and
   produce the identical schedule; tests assert it and the hotpath bench
   measures the gap.  Do not optimise this. *)
let run_reference ?on_step t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let steps_before = t.steps in
  let fibers = Array.of_list (List.rev t.fibers) in
  let runnable () =
    Array.to_list fibers
    |> List.filter (fun f ->
           match f.state with Not_started _ | Suspended _ -> true | Done | Crashed _ -> false)
  in
  let rec loop () =
    match runnable () with
    | [] -> ()
    | rs ->
        if t.steps >= t.step_budget then ()
        else begin
          let f = Rng.pick t.rng rs in
          t.steps <- t.steps + 1;
          (match on_step with Some g -> g f.tid | None -> ());
          step_fiber f;
          loop ()
        end
  in
  loop ();
  finish t ~steps_before fibers

(* ------------------------------------------------------------------ *)
(* Partial-order reduction (sleep sets).                               *)
(* ------------------------------------------------------------------ *)

(* POR hooks cross the lib/sched dependency boundary as plain ints: a
   footprint is an opaque int summary of a step's instrumented accesses
   (Runtime.Footprint encodes/decodes it; 0 means "no instrumented op /
   unknown").  The footprint channels are shared flat arrays, not
   closures: most steps execute nothing instrumented, and an indirect
   call per step to learn "nothing happened" is measurable against a
   step loop this tight.  Only the two relational queries stay calls. *)
type por = {
  pending : int array;
      (* [pending.(tid)] — footprint of the op the fiber will execute
         when next resumed, or 0 if unknown (not yet at a preemption
         point).  Written by the recorder, read directly here.  Fibers
         with tids beyond the array are treated as unknown. *)
  step_fp : int array;
      (* One cell: footprint of the op(s) the last step executed, 0 for
         a step that ran no instrumented op.  The scheduler consumes and
         clears it after every step. *)
  independent : int -> int -> bool;
  spin : int -> int -> bool;
      (* [spin executed pending] — the stepped fiber is busy-wait
         retrying the op it just ran (a failed CAS); park it until a
         conflicting access wakes it instead of letting it spin. *)
}

type por_stats = { mutable pruned_picks : int; mutable forced_wakes : int }

(* The pruning loop.  On top of [run]'s maintained runnable index array
   it keeps a per-fiber sleep bit and the last executed footprint:

   - after stepping fiber [p] with executed footprint [fp], every other
     runnable fiber [q] with a *known* pending footprint independent of
     [fp] and [q.tid < p.tid] is put to sleep: running [q] now would
     produce a schedule Mazurkiewicz-equivalent to one that ran [q]
     before [p] (which the ascending-tid order makes the canonical
     representative), so the pick is redundant;
   - any sleeping fiber whose pending op *conflicts* with [fp] is woken —
     the dependency breaks the commutation argument;
   - a fiber whose next op busy-wait retries the op it just executed
     ([por.spin] — a failed CAS) is itself parked: nothing it can
     observe changes until some step conflicts with that footprint, and
     any such step wakes it through the rule above.  Without this a
     spinner burns the whole step budget while the lock holder sleeps —
     the dominant cost of the pre-optimisation POR mode;
   - steps that executed nothing instrumented neither sleep nor wake
     anyone;
   - if every runnable fiber is asleep the whole set is force-woken
     (counted in [forced_wakes]) so the run always terminates.

   The picks suppressed each step are counted in [pruned_picks].  The
   pruning is heuristic, not exhaustive DPOR: uninstrumented state
   (DRAM, sync-policy bookkeeping) rides along outside the independence
   relation, so equality of the found-bug sets is pinned empirically by
   the POR property tests rather than proved.

   Maintenance is allocation-free: the sleep bits, the candidate
   scratch, and a live sleeper count are preallocated arrays/ints sized
   by the fiber count, and the common no-sleeper step skips the
   candidate pass entirely.  The candidate set itself is cached between
   sleep-state changes — sync-heavy campaigns run tens of thousands of
   steps that execute nothing instrumented, and rebuilding an identical
   candidate array every one of them was the dominant POR cost.  A step
   with no footprint makes zero indirect calls: the executed and
   pending footprints arrive through the [por] record's shared arrays,
   so [independent]/[spin] only run on the steps that did something. *)
let run_por ?on_step ~(por : por) t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  let steps_before = t.steps in
  let fibers = Array.of_list (List.rev t.fibers) in
  let n = max 1 (Array.length fibers) in
  let runnable = Array.make n 0 in
  let n_runnable = ref 0 in
  let asleep = Array.make n false in
  let n_asleep = ref 0 in
  let candidates = Array.make n 0 (* positions in [runnable], not fiber ids *) in
  Array.iteri
    (fun i f ->
      match f.state with
      | Not_started _ | Suspended _ ->
          runnable.(!n_runnable) <- i;
          incr n_runnable
      | Done | Crashed _ -> ())
    fibers;
  let stats = { pruned_picks = 0; forced_wakes = 0 } in
  let pending = por.pending in
  let pn = Array.length pending in
  let sfp = por.step_fp in
  (* Candidate cache: [candidates.(0 .. n_cand-1)] are the awake
     positions, valid while [cand_dirty] is clear.  Any sleep, wake, or
     runnable-set change invalidates it; the steps in between — the
     overwhelming majority — reuse it untouched.  With no sleeper the
     rebuilt cache is the identity over [runnable], so the pick path is
     a single [Rng.int] draw plus two array reads either way.

     [pruned_picks] is settled per *span* rather than per step: between
     two rebuilds every pick suppresses the same number of positions
     ([span_pruned]), so the count is one multiply at the next rebuild
     instead of a read-modify-write on every step. *)
  let n_cand = ref 0 in
  let cand_dirty = ref true in
  let span_start = ref t.steps in
  let span_pruned = ref 0 in
  let settle_span () =
    if !span_pruned > 0 then
      stats.pruned_picks <- stats.pruned_picks + ((t.steps - !span_start) * !span_pruned);
    span_start := t.steps
  in
  let rebuild () =
    settle_span ();
    n_cand := 0;
    for k = 0 to !n_runnable - 1 do
      if not asleep.(runnable.(k)) then begin
        candidates.(!n_cand) <- k;
        incr n_cand
      end
    done;
    if !n_cand = 0 then begin
      (* Everyone runnable is asleep: the canonical representative has
         been followed as far as it goes — wake the set and keep
         scheduling rather than deadlock. *)
      stats.forced_wakes <- stats.forced_wakes + 1;
      for k = 0 to !n_runnable - 1 do
        asleep.(runnable.(k)) <- false;
        candidates.(k) <- k
      done;
      n_asleep := 0;
      n_cand := !n_runnable
    end;
    span_pruned := !n_runnable - !n_cand;
    cand_dirty := false
  in
  let sleep i =
    if not asleep.(i) then begin
      asleep.(i) <- true;
      incr n_asleep;
      cand_dirty := true
    end
  in
  let wake i =
    if asleep.(i) then begin
      asleep.(i) <- false;
      decr n_asleep;
      cand_dirty := true
    end
  in
  let rec loop () =
    if !n_runnable > 0 && t.steps < t.step_budget then begin
      if !cand_dirty then rebuild ();
      let j = candidates.(Rng.int t.rng !n_cand) in
      let i = runnable.(j) in
      let f = fibers.(i) in
      t.steps <- t.steps + 1;
      (match on_step with Some g -> g f.tid | None -> ());
      step_fiber f;
      let fp = Array.unsafe_get sfp 0 in
      if fp <> 0 then begin
        Array.unsafe_set sfp 0 0;
        (* A spin retry (the fiber is about to re-execute the op it just
           ran — a failed CAS) changed nothing observable: it reads its
           word and writes nothing.  It must not drive the wake/sleep
           pass — a failed CAS's [rw] footprint conflicts with every
           fellow spinner's pending CAS, so treating it as a real step
           makes parked spinners wake each other in a round-robin
           livelock that burns the whole budget while the lock holder
           sleeps.  Park the spinner and leave everyone else's sleep
           state alone; the word can only change via a conflicting step
           by an awake fiber, which wakes the spinner through the rule
           below. *)
        let spinning =
          match f.state with
          | Not_started _ | Suspended _ ->
              por.spin fp (if f.tid < pn then Array.unsafe_get pending f.tid else 0)
          | Done | Crashed _ -> false
        in
        if spinning then sleep i
        else
          (* Only two transitions exist, so only two cases need the
             (indirect) independence call: an asleep fiber can only be
             woken (on conflict), and an awake fiber can only be slept
             (commuting op, lower tid).  An awake fiber with a higher
             tid cannot change state — skip it without consulting the
             relation at all. *)
          for k = 0 to !n_runnable - 1 do
            let q = runnable.(k) in
            if q <> i then
              if Array.unsafe_get asleep q then begin
                let qt = fibers.(q).tid in
                let pq = if qt < pn then Array.unsafe_get pending qt else 0 in
                if pq <> 0 && not (por.independent fp pq) then wake q
              end
              else
                let qt = fibers.(q).tid in
                if qt < f.tid then begin
                  let pq = if qt < pn then Array.unsafe_get pending qt else 0 in
                  if pq <> 0 && por.independent fp pq then sleep q
                end
          done
      end;
      (match f.state with
      | Done | Crashed _ ->
          wake i;
          (* Order-preserving removal, as in [run]; [j] is the position. *)
          Array.blit runnable (j + 1) runnable j (!n_runnable - j - 1);
          decr n_runnable;
          cand_dirty := true
      | Not_started _ | Suspended _ -> ());
      loop ()
    end
  in
  loop ();
  settle_span ();
  (finish t ~steps_before fibers, stats)

let completed o = o.hung = [] && o.failed = []

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "steps=%d finished=%d hung=[%a] failed=[%a]" o.steps (List.length o.finished)
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int string))
    o.hung
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int string))
    (List.map (fun (t, n, _) -> (t, n)) o.failed)

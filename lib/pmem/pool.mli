(** Simulated persistent-memory pool.

    The pool models the visibility/persistency gap that defines PM
    crash-consistency bugs: stores become {e visible} immediately (they land
    in the volatile image, the simulated cache view) but only become
    {e durable} once the line has been flushed ([clwb]) and a fence
    ([sfence]) has drained the write-back queue.  A {!crash_image} captures
    exactly the durable contents, discarding everything else.

    Addresses are word offsets (one word = 8 bytes); see {!Cacheline}. *)

type t

type writer = { tid : int; instr : int; seq : int }
(** Identity of the last store to a dirty word: the writing thread, the
    static instruction id of the store site, and a global sequence number. *)

type image
(** A crash image: the durable contents at some instant. *)

type snapshot
(** An in-memory checkpoint of a quiesced pool: the volatile and durable
    images plus the word-sequence number and access counters at capture
    time.  Used to skip expensive pool re-initialisation between fuzz
    campaigns (the paper's Figure 10).  Snapshots are immutable and safe to
    share read-only across worker domains; each carries a globally unique
    identity so a pool can tell which snapshot is its O(touched)-reset
    baseline (see {!reset_to_snapshot}). *)

val create : ?eadr:bool -> words:int -> unit -> t
(** [create ~words ()] allocates a zeroed pool.  [words] must be a positive
    multiple of {!Cacheline.words_per_line}.
    [eadr:true] models extended ADR (§6.6 of the paper): the cache
    hierarchy is battery-backed, every store is durable immediately and
    never PM-dirty — the visibility/persistency gap disappears.
    @raise Invalid_argument otherwise. *)

val is_eadr : t -> bool

val size : t -> int

val load : t -> int -> int64
(** Read the visible (volatile) contents of a word, counting the access. *)

val peek : t -> int -> int64
(** Like {!load} but without touching access statistics; for checkers and
    tests. *)

val store : t -> tid:int -> instr:int -> int -> int64 -> unit
(** A cached store: visible immediately, durable only after [clwb]+[sfence].
    Marks the word dirty and records the writer. *)

val movnt : t -> tid:int -> instr:int -> int -> int64 -> unit
(** A non-temporal store: visible immediately, never PM-dirty for checking
    purposes, durable after the next {!sfence}. *)

val clwb : t -> int -> unit
(** Flush the cache line containing the word: its dirty words become clean
    and are queued for write-back at the next {!sfence}. *)

val sfence : t -> int list
(** Drain the write-back queue.  Returns the word offsets that just became
    durable (in increasing order).  Cost is O(pending-index size) — the
    words flushed or movnt'd since the last drain — not O(pool): the pool
    maintains an explicit pending-word index (generation-stamped, deduped
    once per generation like the touched-word journal) instead of scanning
    every word.  Behaviourally identical to {!sfence_scan}. *)

val sfence_scan : t -> int list
(** The legacy O(pool-size) fence: a full scan over every word.  Kept as
    the executable specification of {!sfence} for the equivalence property
    test and the [hotpath] bench; not for production callers. *)

val pending_index_size : t -> int
(** Number of entries the next {!sfence} will examine: the words whose
    pending flag was raised since the last drain (a superset of the
    currently pending words — later stores may have cleared flags).  This
    is exactly the fence's work, the O(pending) analogue of
    {!touched_words}; it resets to 0 at every fence and epoch change. *)

val evict_line : t -> int -> int list
(** Silently write back a line, modelling arbitrary hardware cache eviction.
    Returns the words that became durable. *)

val dirty_writer : t -> int -> writer option
(** [dirty_writer t w] is the identity of the pending store to [w], or
    [None] when the word is clean (persisted or never written). *)

val is_dirty : t -> int -> bool
val is_pending : t -> int -> bool

val is_durably_equal : t -> int -> bool
(** Whether the visible and durable contents of a word agree. *)

val dirty_words : t -> int list
(** All dirty word offsets, ascending.  O(touched this epoch), not
    O(pool): walks the touched-word journal, a superset of the dirty set
    within an epoch. *)

val pending_words : t -> int list
(** All pending word offsets, ascending.  O(touched this epoch), like
    {!dirty_words}. *)

val quiesce : t -> unit
(** Flush and fence everything, making the visible image durable. *)

val crash_image : t -> image
(** The durable contents right now — the memory a restarted program sees. *)

val image_word : image -> int -> int64
val image_words : image -> int

val image_copy : image -> image
(** An independent copy of an image (for materialising enumerated crash
    states without touching the base; see {!Crash_images}). *)

val image_set : image -> int -> int64 -> unit
(** Overwrite one word of an image in place.  This is the delta-application
    primitive of {!Crash_images}: an enumerated crash state is the base
    image plus a few [image_set]s, never a fresh pool. *)

val of_image : image -> t
(** Boot a fresh pool from a crash image (volatile = durable = image, all
    clean), as after a restart. *)

val snapshot : t -> snapshot
(** Capture an in-memory checkpoint.  Semantics (pinned; the audit of the
    restore round-trip relies on these):

    - The pool must be {e quiesced}: no dirty and no pending words.  A
      checkpoint of in-flight cache state would be meaningless to restore
      (the write-back queue is not part of the checkpoint), so this raises
      [Invalid_argument] instead of silently dropping state.  Call
      {!quiesce} first.
    - The snapshot records both images {e and} the word-sequence number and
      access counters, so a later restore resets them too — statistics and
      writer sequence numbers never leak from one campaign into the next.
    - Capturing also makes this snapshot the pool's current baseline and
      starts a fresh touched-word journal (see {!reset_to_snapshot}). *)

val restore : t -> snapshot -> unit
(** Return the pool to exactly the observable state captured by the
    snapshot: both images, all-clean metadata, sequence number, and access
    counters.  O(pool) — blits whole images — but works for any snapshot of
    the right size, regardless of provenance; it (re)establishes the
    snapshot as the pool's baseline so subsequent {!reset_to_snapshot}
    calls are valid.
    @raise Invalid_argument on size mismatch. *)

val reset_to_snapshot : t -> snapshot -> unit
(** Like {!restore}, but O(touched): undoes only the words recorded in the
    touched-word journal since the baseline was last established.  Only
    valid when [s] is the pool's current baseline — i.e. the pool's state
    is [s] plus the journaled mutations — which holds after [snapshot t],
    [restore t s], or a previous [reset_to_snapshot t s].
    @raise Invalid_argument when [s] is not the current baseline. *)

val touched_words : t -> int
(** Number of distinct words whose images were mutated since the baseline
    was last established (the length of the touched-word journal).  This is
    exactly the work {!reset_to_snapshot} will do. *)

type stats = {
  loads : int;
  stores : int;
  movnts : int;
  flushes : int;
  fences : int;
  evictions : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(* Simulated persistent-memory pool.

   The pool keeps two images of memory:

   - [volatile]: the view CPU loads observe.  Stores land here first, which
     models data sitting in the (volatile) cache hierarchy.
   - [durable]: the media contents, i.e. what survives a crash.

   A store marks its word dirty and records which thread/instruction wrote
   it.  CLWB over a line moves its dirty words into a "pending" set and —
   following the persistency-state convention of the paper (§4.3) — marks
   them clean for checking purposes.  SFENCE writes pending words back to
   the durable image.  Non-temporal stores are immediately clean but still
   only durable after the next fence.  A crash discards the volatile image
   and all pending-but-unfenced write-backs.

   Representation (the persistent-mode execution engine, Figure 10): the
   per-word dirty/writer/pending metadata is *epoch-stamped* — an entry is
   only valid when [meta_epoch.(w) = epoch], so invalidating all metadata
   is a single epoch bump instead of four whole-pool array fills.  Every
   image mutation also records its word (once per epoch) in a touched-word
   journal, so [reset_to_snapshot] undoes exactly the words a campaign
   wrote: reset cost is O(touched), not O(pool).

   The run-cost twin of that idea (the hot-path overhaul): a pending-word
   index records each word whose pending flag is raised, so SFENCE drains
   in O(pending) instead of scanning the pool, and the line ops walk
   [base, base+words_per_line) in place instead of materialising word
   lists. *)

type writer = { tid : int; instr : int; seq : int }

type t = {
  words : int;
  eadr : bool; (* extended ADR: the cache hierarchy is in the persistent domain *)
  volatile : int64 array;
  durable : int64 array;
  dirty_tid : int array; (* valid (and -1 = clean) only when meta_epoch matches *)
  dirty_instr : int array;
  dirty_seq : int array;
  pending : bool array; (* written back at the next SFENCE; epoch-guarded *)
  meta_epoch : int array; (* dirty_*/pending entries are valid iff = epoch *)
  mutable epoch : int;
  (* Touched-word journal: words whose volatile or durable image changed
     since the epoch began, each recorded once (journal_epoch dedupes). *)
  mutable journal : int array;
  mutable journal_len : int;
  journal_epoch : int array;
  (* Pending-word index: the set of words [sfence] must examine — every
     word whose [pending] flag was raised since the last drain, recorded
     once per generation ([pend_stamp] dedupes, like the journal).  Entries
     can be stale (a later store cleared the flag), so the index is a
     superset of the pending set; [sfence] filters, which makes a fence
     O(pending index) instead of an O(pool) scan.  Draining (a fence or an
     epoch change) bumps [pend_gen], so stale stamps never resurrect. *)
  mutable pend_idx : int array;
  mutable pend_len : int;
  pend_stamp : int array;
  mutable pend_gen : int;
  mutable baseline : int; (* snapshot id the journal diverges from; 0 = none *)
  mutable seq : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_movnts : int;
  mutable n_flushes : int;
  mutable n_fences : int;
  mutable n_evictions : int;
}

type image = int64 array

type snapshot = {
  s_id : int; (* identity: which pool baseline this snapshot can O(touched)-reset *)
  s_volatile : int64 array;
  s_durable : int64 array;
  s_seq : int;
  s_loads : int;
  s_stores : int;
  s_movnts : int;
  s_flushes : int;
  s_fences : int;
  s_evictions : int;
}

(* Snapshot identities are global and atomic: snapshots are shared
   read-only across the §5 worker domains, each of which stamps its own
   pool's baseline with the id. *)
let snapshot_ids = Atomic.make 0

let create ?(eadr = false) ~words () =
  if words <= 0 || words mod Cacheline.words_per_line <> 0 then
    invalid_arg "Pool.create: size must be a positive multiple of the line size";
  {
    words;
    eadr;
    volatile = Array.make words 0L;
    durable = Array.make words 0L;
    dirty_tid = Array.make words (-1);
    dirty_instr = Array.make words (-1);
    dirty_seq = Array.make words (-1);
    pending = Array.make words false;
    meta_epoch = Array.make words 0;
    epoch = 1;
    journal = Array.make 256 0;
    journal_len = 0;
    journal_epoch = Array.make words 0;
    pend_idx = Array.make 64 0;
    pend_len = 0;
    pend_stamp = Array.make words 0;
    pend_gen = 1;
    baseline = 0;
    seq = 0;
    n_loads = 0;
    n_stores = 0;
    n_movnts = 0;
    n_flushes = 0;
    n_fences = 0;
    n_evictions = 0;
  }

let size t = t.words

let check t w =
  if w < 0 || w >= t.words then
    invalid_arg (Printf.sprintf "Pool: word offset %d out of bounds [0,%d)" w t.words)

(* Record an image mutation in the touched-word journal, once per epoch. *)
let journal_touch t w =
  if t.journal_epoch.(w) <> t.epoch then begin
    t.journal_epoch.(w) <- t.epoch;
    if t.journal_len = Array.length t.journal then begin
      let bigger = Array.make (2 * t.journal_len) 0 in
      Array.blit t.journal 0 bigger 0 t.journal_len;
      t.journal <- bigger
    end;
    t.journal.(t.journal_len) <- w;
    t.journal_len <- t.journal_len + 1
  end

let touched_words t = t.journal_len

(* Record a word in the pending index, once per generation.  Callers raise
   [t.pending.(w)] themselves; the index only guarantees [sfence] will
   look at the word. *)
let pend_add t w =
  if t.pend_stamp.(w) <> t.pend_gen then begin
    t.pend_stamp.(w) <- t.pend_gen;
    if t.pend_len = Array.length t.pend_idx then begin
      let bigger = Array.make (2 * t.pend_len) 0 in
      Array.blit t.pend_idx 0 bigger 0 t.pend_len;
      t.pend_idx <- bigger
    end;
    t.pend_idx.(t.pend_len) <- w;
    t.pend_len <- t.pend_len + 1
  end

(* Empty the pending index.  Only valid when no word is pending any more
   (after a fence drained the queue, or when an epoch change invalidated
   all metadata); bumping the generation retires every stamp at once. *)
let pend_drain t =
  t.pend_gen <- t.pend_gen + 1;
  t.pend_len <- 0

let pending_index_size t = t.pend_len

(* Start a new epoch: all per-word metadata becomes invalid (clean, not
   pending) and the journal and pending index empty — O(1) instead of
   O(pool). *)
let new_epoch t =
  t.epoch <- t.epoch + 1;
  t.journal_len <- 0;
  pend_drain t

(* Validate a word's metadata entry for the current epoch, initialising it
   to the clean state when the stamp is stale. *)
let refresh_meta t w =
  if t.meta_epoch.(w) <> t.epoch then begin
    t.meta_epoch.(w) <- t.epoch;
    t.dirty_tid.(w) <- -1;
    t.dirty_instr.(w) <- -1;
    t.dirty_seq.(w) <- -1;
    t.pending.(w) <- false
  end

let load t w =
  check t w;
  t.n_loads <- t.n_loads + 1;
  t.volatile.(w)

let peek t w =
  check t w;
  t.volatile.(w)

(* The dirty indicator is the sequence number (>= 1 when dirty): thread
   ids can legitimately be negative (init/recovery contexts). *)
let dirty_writer t w =
  check t w;
  if t.meta_epoch.(w) <> t.epoch || t.dirty_seq.(w) < 0 then None
  else Some { tid = t.dirty_tid.(w); instr = t.dirty_instr.(w); seq = t.dirty_seq.(w) }

let is_dirty t w =
  check t w;
  t.meta_epoch.(w) = t.epoch && t.dirty_seq.(w) >= 0

let is_pending t w =
  check t w;
  t.meta_epoch.(w) = t.epoch && t.pending.(w)

let is_durably_equal t w =
  check t w;
  Int64.equal t.volatile.(w) t.durable.(w)

let is_eadr t = t.eadr

let clean_word t w =
  t.dirty_tid.(w) <- -1;
  t.dirty_instr.(w) <- -1;
  t.dirty_seq.(w) <- -1

let store t ~tid ~instr w v =
  check t w;
  t.n_stores <- t.n_stores + 1;
  t.seq <- t.seq + 1;
  journal_touch t w;
  t.volatile.(w) <- v;
  if t.eadr then
    (* eADR (§6.6): caches are battery-backed, so every store is durable at
       once and never PM_DIRTY — the visibility/persistency gap is gone.
       No metadata entry is ever valid on an eADR pool. *)
    t.durable.(w) <- v
  else begin
    refresh_meta t w;
    t.dirty_tid.(w) <- tid;
    t.dirty_instr.(w) <- instr;
    t.dirty_seq.(w) <- t.seq;
    (* A store after CLWB but before the fence is not covered by the
       pending write-back: the line must be flushed again. *)
    t.pending.(w) <- false
  end

let movnt t ~tid:_ ~instr:_ w v =
  check t w;
  t.n_movnts <- t.n_movnts + 1;
  t.seq <- t.seq + 1;
  journal_touch t w;
  t.volatile.(w) <- v;
  if t.eadr then t.durable.(w) <- v
  else begin
    (* Non-temporal stores bypass the cache: the word is never PM_DIRTY for
       checking purposes, but durability still requires the next SFENCE. *)
    refresh_meta t w;
    clean_word t w;
    t.pending.(w) <- true;
    pend_add t w
  end

let clwb t w =
  check t w;
  t.n_flushes <- t.n_flushes + 1;
  (* Walk the line in place (Cacheline.iter_line geometry): the legacy
     words-of-line list cost one allocation per flush on the hottest
     instrumented operation. *)
  Cacheline.iter_line
    (fun x ->
      if t.meta_epoch.(x) = t.epoch && t.dirty_seq.(x) >= 0 then begin
        clean_word t x;
        t.pending.(x) <- true;
        pend_add t x
      end)
    w

(* Persist one pending word: clear the flag, journal the durable-image
   mutation, write back. *)
let persist_word t w =
  t.pending.(w) <- false;
  journal_touch t w;
  t.durable.(w) <- t.volatile.(w)

let sfence t =
  t.n_fences <- t.n_fences + 1;
  (* Compact the index in place down to the words that are still pending
     (stores since their CLWB may have cleared the flag) ... *)
  let n = ref 0 in
  for i = 0 to t.pend_len - 1 do
    let w = t.pend_idx.(i) in
    if t.meta_epoch.(w) = t.epoch && t.pending.(w) then begin
      t.pend_idx.(!n) <- w;
      incr n
    end
  done;
  let n = !n in
  (* ... then sort that prefix so the persisted list comes back in the
     ascending order the legacy full scan produced: checkers and golden
     fingerprints observe it.  O(pending log pending), independent of the
     pool size. *)
  let sorted = Array.sub t.pend_idx 0 n in
  Array.sort Int.compare sorted;
  let persisted = ref [] in
  for i = n - 1 downto 0 do
    let w = sorted.(i) in
    persist_word t w;
    persisted := w :: !persisted
  done;
  pend_drain t;
  !persisted

(* The legacy O(pool-size) fence: a full descending scan over every word.
   Kept verbatim as the executable specification of [sfence] — the
   equivalence property in test_pool runs both in lockstep — and as the
   "before" side of the hotpath bench.  Do not optimise this. *)
let sfence_scan t =
  t.n_fences <- t.n_fences + 1;
  let persisted = ref [] in
  for w = t.words - 1 downto 0 do
    if t.meta_epoch.(w) = t.epoch && t.pending.(w) then begin
      persist_word t w;
      persisted := w :: !persisted
    end
  done;
  pend_drain t;
  !persisted

let evict_line t line =
  let base = Cacheline.first_word_of_line line in
  if base < 0 || base >= t.words then
    invalid_arg "Pool.evict_line: line out of bounds";
  let evicted = ref [] in
  Cacheline.iter_line
    (fun w ->
      if is_dirty t w then begin
        clean_word t w;
        journal_touch t w;
        t.durable.(w) <- t.volatile.(w);
        t.n_evictions <- t.n_evictions + 1;
        evicted := w :: !evicted
      end)
    base;
  List.rev !evicted

(* Within an epoch every dirty word was stored (journaled) and every
   pending word was movnt'd (journaled) or was dirty when CLWB'd (ditto),
   so the touched-word journal is a superset of dirty ∪ pending: walking
   it — O(touched) — replaces the O(pool) scans below.  The journal is in
   first-touch order, so sort to keep the historical ascending results. *)
let dirty_words t =
  let acc = ref [] in
  for i = 0 to t.journal_len - 1 do
    let w = t.journal.(i) in
    if is_dirty t w then acc := w :: !acc
  done;
  List.sort Int.compare !acc

let pending_words t =
  let acc = ref [] in
  for i = 0 to t.journal_len - 1 do
    let w = t.journal.(i) in
    if is_pending t w then acc := w :: !acc
  done;
  List.sort Int.compare !acc

let quiesce t =
  for i = 0 to t.journal_len - 1 do
    let w = t.journal.(i) in
    if is_dirty t w then begin
      clean_word t w;
      t.pending.(w) <- true;
      pend_add t w
    end
  done;
  ignore (sfence t)

let crash_image t = Array.copy t.durable
let image_word (img : image) w = img.(w)
let image_words (img : image) = Array.length img
let image_copy (img : image) = Array.copy img
let image_set (img : image) w v = img.(w) <- v

let of_image (img : image) =
  let t = create ~words:(Array.length img) () in
  Array.blit img 0 t.volatile 0 (Array.length img);
  Array.blit img 0 t.durable 0 (Array.length img);
  t

(* Both restore paths return the pool to the exact observable state the
   snapshot captured; they differ only in cost.  [finish_reset] installs
   the non-image half of that state: metadata all-clean (fresh epoch),
   and the sequence number and access counters as of snapshot time. *)
let finish_reset t s =
  new_epoch t;
  t.baseline <- s.s_id;
  t.seq <- s.s_seq;
  t.n_loads <- s.s_loads;
  t.n_stores <- s.s_stores;
  t.n_movnts <- s.s_movnts;
  t.n_flushes <- s.s_flushes;
  t.n_fences <- s.s_fences;
  t.n_evictions <- s.s_evictions

let snapshot t =
  (* Snapshots are only meaningful for quiesced pools (no dirty or pending
     words), which is how in-memory checkpoints are used: after pool
     initialisation completes.  Any dirty/pending word was image-mutated
     this epoch, so scanning the journal suffices to enforce this. *)
  for i = 0 to t.journal_len - 1 do
    let w = t.journal.(i) in
    if is_dirty t w || is_pending t w then
      invalid_arg "Pool.snapshot: pool not quiesced (dirty or pending words)"
  done;
  let s =
    {
      s_id = 1 + Atomic.fetch_and_add snapshot_ids 1;
      s_volatile = Array.copy t.volatile;
      s_durable = Array.copy t.durable;
      s_seq = t.seq;
      s_loads = t.n_loads;
      s_stores = t.n_stores;
      s_movnts = t.n_movnts;
      s_flushes = t.n_flushes;
      s_fences = t.n_fences;
      s_evictions = t.n_evictions;
    }
  in
  (* The pool now *is* the snapshot: make it the O(touched)-reset baseline. *)
  finish_reset t s;
  s

let restore t s =
  if Array.length s.s_volatile <> t.words then
    invalid_arg "Pool.restore: snapshot size mismatch";
  Array.blit s.s_volatile 0 t.volatile 0 t.words;
  Array.blit s.s_durable 0 t.durable 0 t.words;
  finish_reset t s

let reset_to_snapshot t s =
  if t.baseline <> s.s_id then
    invalid_arg
      "Pool.reset_to_snapshot: snapshot is not this pool's baseline (use restore first)";
  for i = 0 to t.journal_len - 1 do
    let w = t.journal.(i) in
    t.volatile.(w) <- s.s_volatile.(w);
    t.durable.(w) <- s.s_durable.(w)
  done;
  finish_reset t s

type stats = {
  loads : int;
  stores : int;
  movnts : int;
  flushes : int;
  fences : int;
  evictions : int;
}

let stats t =
  {
    loads = t.n_loads;
    stores = t.n_stores;
    movnts = t.n_movnts;
    flushes = t.n_flushes;
    fences = t.n_fences;
    evictions = t.n_evictions;
  }

let pp_stats ppf s =
  Fmt.pf ppf "loads=%d stores=%d movnts=%d flushes=%d fences=%d evictions=%d" s.loads s.stores
    s.movnts s.flushes s.fences s.evictions

(* Systematic crash-image enumeration.

   The durable state at a failure point is underdetermined: the base
   [Pool.crash_image] shows what has provably drained, but any subset of
   the in-flight cache lines may additionally have reached PM (WITCHER /
   Chipmunk enumerate exactly this space).  The reachable images are
   constrained by fence order *within* a line:

   - a pending word (flushed, awaiting the fence) may drain by itself;
   - a dirty word can only drain through a whole-line eviction, which
     also carries every pending word of that line with it.

   So each in-flight line has a small "drain level" radix — 1 (nothing
   in flight), 2 (pending XOR dirty words), or 3 (pending words first,
   then pending+dirty) — and a crash state is one digit per line.  Lines
   drain independently of each other: cross-line fence order is already
   folded into the base image (everything older than the last fence is
   durable there).

   Capture is O(touched): the candidate words come from the pool's
   touched-word journal ([Pool.dirty_words] / [Pool.pending_words]),
   filtered to words whose volatile value actually differs from the
   durable one (a no-op drain yields the same image, so it is excluded
   to keep every enumerated image distinct).

   States are materialised lazily as deltas — [(word, volatile value)]
   lists applied over the shared base image — never a full pool copy per
   image.  Enumeration order is deterministic and indexable: by total
   drain weight (number of non-zero digits' sum), then lexicographically
   by line address; index 0 is always the empty delta, i.e. exactly the
   base [Pool.crash_image].  Validating only index 0 therefore
   reproduces single-image behaviour bit-identically. *)

type delta = (int * int64) list

type line = {
  l_line : int; (* line number, for ordering *)
  l_pending : (int * int64) array; (* (word, volatile value), ascending *)
  l_dirty : (int * int64) array;
}

type state = { c_base : Pool.image; c_lines : line array }

let capture pool =
  let base = Pool.crash_image pool in
  let tbl : (int, (int * int64) list ref * (int * int64) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let slot line =
    match Hashtbl.find_opt tbl line with
    | Some s -> s
    | None ->
        let s = (ref [], ref []) in
        Hashtbl.add tbl line s;
        s
  in
  let record ~pending w =
    let v = Pool.peek pool w in
    if not (Int64.equal v (Pool.image_word base w)) then begin
      let p, d = slot (Cacheline.line_of_word w) in
      let cell = if pending then p else d in
      cell := (w, v) :: !cell
    end
  in
  List.iter (record ~pending:true) (Pool.pending_words pool);
  List.iter (record ~pending:false) (Pool.dirty_words pool);
  let lines =
    Hashtbl.fold
      (fun line (p, d) acc ->
        {
          l_line = line;
          l_pending = Array.of_list (List.sort compare !p);
          l_dirty = Array.of_list (List.sort compare !d);
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.l_line b.l_line)
    |> Array.of_list
  in
  { c_base = base; c_lines = lines }

let of_image img = { c_base = img; c_lines = [||] }
let base st = st.c_base
let line_count st = Array.length st.c_lines

let radix l =
  1
  + (if Array.length l.l_pending > 0 then 1 else 0)
  + if Array.length l.l_dirty > 0 then 1 else 0

(* Saturating product: radices are tiny but there may be many lines. *)
let count st =
  Array.fold_left
    (fun acc l ->
      let r = radix l in
      if acc > max_int / r then max_int else acc * r)
    1 st.c_lines

(* The delta contributed by draining line [l] to level [d]:
   level 1 drains the pending words (or the dirty words when nothing is
   pending — a dirty-only line can still be evicted whole); level 2
   drains both.  Dirty words never drain without the line's pending
   words: eviction writes back the entire line. *)
let line_delta l d acc =
  let add arr acc = Array.fold_right (fun wv acc -> wv :: acc) arr acc in
  match d with
  | 0 -> acc
  | 1 -> if Array.length l.l_pending > 0 then add l.l_pending acc else add l.l_dirty acc
  | _ -> add l.l_dirty (add l.l_pending acc)

(* All digit vectors of total weight [w] over [radices], lexicographically
   ascending with the lowest line most significant. *)
let rec vectors radices i w : int list Seq.t =
  if i = Array.length radices then if w = 0 then Seq.return [] else Seq.empty
  else
    Seq.concat_map
      (fun d -> Seq.map (fun tl -> d :: tl) (vectors radices (i + 1) (w - d)))
      (Seq.init (min (radices.(i) - 1) w + 1) Fun.id)

let delta_of_digits st digits =
  let acc = ref [] in
  List.iteri (fun i d -> acc := line_delta st.c_lines.(i) d !acc) digits;
  List.sort compare !acc

let to_seq st : (int * delta) Seq.t =
  let radices = Array.map radix st.c_lines in
  let max_weight = Array.fold_left (fun a r -> a + r - 1) 0 radices in
  Seq.init (max_weight + 1) Fun.id
  |> Seq.concat_map (fun w -> vectors radices 0 w)
  |> Seq.map (delta_of_digits st)
  |> Seq.mapi (fun i d -> (i, d))

let delta st i =
  if i < 0 then None
  else
    let rec go s =
      match s () with
      | Seq.Nil -> None
      | Seq.Cons ((j, d), rest) -> if j = i then Some d else go rest
    in
    go (to_seq st)

let image st i =
  Option.map
    (fun d ->
      let img = Pool.image_copy st.c_base in
      List.iter (fun (w, v) -> Pool.image_set img w v) d;
      img)
    (delta st i)

let with_image st (d : delta) f =
  let saved = List.map (fun (w, _) -> (w, Pool.image_word st.c_base w)) d in
  List.iter (fun (w, v) -> Pool.image_set st.c_base w v) d;
  Fun.protect
    ~finally:(fun () -> List.iter (fun (w, v) -> Pool.image_set st.c_base w v) saved)
    (fun () -> f st.c_base)

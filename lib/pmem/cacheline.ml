(* Cache-line geometry of the simulated persistent-memory device.

   Addresses throughout the simulator are *word offsets* into the pool
   (one word = 8 bytes), so a cache line groups [words_per_line]
   consecutive words.  This mirrors the 64-byte line granularity of
   CLWB/CLFLUSHOPT on x86. *)

let bytes_per_word = 8
let words_per_line = 8
let bytes_per_line = bytes_per_word * words_per_line

let line_of_word w = w / words_per_line
let first_word_of_line l = l * words_per_line

(* All word offsets covered by the line containing [w].  Cold-path only:
   materialises a fresh list per call — hot paths use [iter_line] /
   [fold_line] below, which walk the line without allocating. *)
let words_of_line_containing w =
  let base = first_word_of_line (line_of_word w) in
  List.init words_per_line (fun i -> base + i)

let iter_line f w =
  let base = first_word_of_line (line_of_word w) in
  for x = base to base + words_per_line - 1 do
    f x
  done

let fold_line f init w =
  let base = first_word_of_line (line_of_word w) in
  let acc = ref init in
  for x = base to base + words_per_line - 1 do
    acc := f !acc x
  done;
  !acc

let same_line a b = line_of_word a = line_of_word b

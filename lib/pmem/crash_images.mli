(** Systematic crash-image enumeration.

    At a failure point the base {!Pool.crash_image} is only one of the
    reachable durable states: any subset of the in-flight cache lines may
    additionally have drained, subject to fence order.  This module
    captures the in-flight state from the pool's O(touched) journal and
    enumerates the reachable images as lazy deltas over the shared base
    image — never a full pool copy per image.

    Per line, the model is a small drain-level radix: level 0 leaves the
    line as in the base image; level 1 drains its pending (flushed,
    pre-fence) words; the top level models a whole-line eviction, which
    drains the dirty words {e and} the pending ones (dirty words never
    reach PM without the rest of the line).  Lines drain independently —
    cross-line ordering up to the last fence is already folded into the
    base image.

    Enumeration order is deterministic and indexable: images are ordered
    by total drain weight, then lexicographically by line address.
    {b Index 0 is always the empty delta}, i.e. exactly the base
    [crash_image] — so a budget of one image reproduces single-image
    validation bit-identically. *)

type state
(** The captured crash surface: base image + per-line in-flight words. *)

type delta = (int * int64) list
(** An enumerated image as [(word, value)] overrides of the base image,
    ascending by word.  The empty delta is the base image itself. *)

val capture : Pool.t -> state
(** Capture the crash surface at the current instant.  O(touched): walks
    {!Pool.dirty_words} / {!Pool.pending_words}, keeping only words whose
    volatile value differs from the durable one (no-op drains would
    duplicate images). *)

val of_image : Pool.image -> state
(** A degenerate surface with no in-flight lines: enumerates exactly one
    image, the given one.  Used to validate legacy candidates that carry
    only a bare image. *)

val base : state -> Pool.image
(** The base image (shared, not a copy — treat as read-only). *)

val line_count : state -> int
(** Number of in-flight cache lines. *)

val count : state -> int
(** Number of reachable images (product of per-line radices, saturating
    at [max_int]); at least 1. *)

val to_seq : state -> (int * delta) Seq.t
(** All reachable images in enumeration order, as [(index, delta)].
    The first element is always [(0, [])]. *)

val delta : state -> int -> delta option
(** [delta st i] is the delta of image [i], or [None] when [i] is out of
    range.  O(i) — it walks the enumeration; meant for replaying a
    recorded image index, not for iteration (use {!to_seq}). *)

val image : state -> int -> Pool.image option
(** [image st i] materialises image [i] as an independent copy (base
    plus delta); [None] when out of range. *)

val with_image : state -> delta -> (Pool.image -> 'a) -> 'a
(** [with_image st d f] applies [d] to the shared base image in place,
    runs [f] on it, and restores the base afterwards (also on raise).
    The image passed to [f] is only valid during the call. *)

(** Cache-line geometry of the simulated persistent-memory device.

    Addresses throughout the simulator are {e word offsets} into the pool
    (one word = 8 bytes); a cache line groups eight consecutive words,
    mirroring the 64-byte granularity of [CLWB]/[CLFLUSHOPT] on x86. *)

val bytes_per_word : int
val words_per_line : int
val bytes_per_line : int

val line_of_word : int -> int
(** [line_of_word w] is the index of the cache line containing word [w]. *)

val first_word_of_line : int -> int
(** [first_word_of_line l] is the lowest word offset inside line [l]. *)

val words_of_line_containing : int -> int list
(** All word offsets sharing a cache line with the given word.
    @deprecated Allocates a fresh list per call; kept for cold-path
    callers (the offline analyzer, tests).  Hot-path code — anything a
    campaign executes per instrumented operation — must use {!iter_line}
    or {!fold_line} instead. *)

val iter_line : (int -> unit) -> int -> unit
(** [iter_line f w] applies [f] to every word offset of the cache line
    containing [w], in ascending order, without allocating. *)

val fold_line : ('a -> int -> 'a) -> 'a -> int -> 'a
(** [fold_line f init w] folds [f] over the word offsets of the cache line
    containing [w], in ascending order, without allocating a list. *)

val same_line : int -> int -> bool
(** [same_line a b] holds when words [a] and [b] share a cache line. *)

(* The pmrace command-line interface.

     pmrace list                        show the available targets
     pmrace fuzz TARGET [options]       fuzz one target and print the report
     pmrace replay TARGET --from S.json re-execute one recorded campaign
     pmrace analyze TARGET [options]    offline persistency analysis (no fuzzing)
     pmrace inspect TARGET              show a target's seeded ground truth

   The table/figure reproductions live in the benchmark harness
   (dune exec bench/main.exe). *)

open Cmdliner

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

let print_session ppf (target : Pmrace.Target.t) (s : Fuzzer.session) =
  (* wall_time is read from the monotonized clock (Obs.Clock), so the
     execs/sec figure cannot go negative under wall-clock adjustments. *)
  Format.fprintf ppf "== %s: %d campaigns in %.2fs (%.0f execs/sec) ==@." target.name
    s.campaigns_run s.wall_time
    (float_of_int s.campaigns_run /. Float.max 1e-9 s.wall_time);
  if Array.length s.worker_campaigns > 1 then
    Format.fprintf ppf "campaigns per worker: %a@."
      Fmt.(array ~sep:comma int)
      s.worker_campaigns;
  Format.fprintf ppf "coverage: %d PM alias pairs (%a), %d branches@."
    (Pmrace.Alias_cov.count s.alias) Pmrace.Alias_cov.pp_site_coverage s.alias
    (Pmrace.Branch_cov.count s.branch);
  (match Pmrace.Report.lint_findings s.report with
  | [] -> ()
  | fs -> Format.fprintf ppf "static pre-pass: %d lint findings (see pmrace analyze)@." (List.length fs));
  (match Pmrace.Report.invariants s.report with
  | [] -> ()
  | specs ->
      Format.fprintf ppf "invariant monitor: %d likely invariants, %d violated@."
        (List.length specs)
        (List.length (Pmrace.Report.invariant_findings s.report));
      List.iter
        (fun (f : Pmrace.Report.inv_finding) ->
          Format.fprintf ppf "  VIOLATED %s at %s (campaign %d%a)@." f.Report.iv_label
            f.Report.iv_site f.Report.iv_found_at
            (fun ppf -> function
              | None -> ()
              | Some v -> Format.fprintf ppf ", %a" Pmrace.Post_failure.pp_verdict v)
            f.Report.iv_verdict)
        (Pmrace.Report.invariant_findings s.report));
  Format.fprintf ppf "candidates: %d inter, %d intra@."
    (Report.candidate_count s.report Runtime.Candidates.Inter)
    (Report.candidate_count s.report Runtime.Candidates.Intra);
  let show kind name =
    let cs = Report.coarse_summary s.report kind in
    Format.fprintf ppf
      "%s inconsistencies: %d (validated FP %d, whitelisted %d, bugs %d, unvalidated %d)@." name
      cs.Report.total cs.Report.validated_fp cs.Report.whitelisted_fp cs.Report.bugs
      cs.Report.pending
  in
  show Runtime.Candidates.Inter "inter-thread";
  show Runtime.Candidates.Intra "intra-thread";
  let sfp, _, sbugs, _ = Report.sync_verdict_summary s.report in
  Format.fprintf ppf
    "synchronization: %d annotations, %d inconsistencies (validated FP %d, bugs %d)@."
    s.annotations
    (List.length (Report.sync_findings s.report))
    sfp sbugs;
  (match Report.hangs s.report with
  | [] -> ()
  | hs ->
      Format.fprintf ppf "hangs: %a@."
        Fmt.(list ~sep:comma (pair ~sep:(any " x") string int))
        hs);
  (match s.por with
  | None -> ()
  | Some (p : Pmrace.Hub.por_totals) ->
      Format.fprintf ppf
        "partial-order reduction: %d picks pruned over %d campaigns, %d unique traces (%d \
         redundant skipped validation, %d forced wakes)@."
        p.pt_pruned p.pt_campaigns p.pt_unique_traces p.pt_dup_traces p.pt_forced_wakes);
  Format.fprintf ppf "@.unique bug groups:@.";
  List.iter (fun g -> Format.fprintf ppf "  %a@." Report.pp_bug_group g)
    (Report.bug_groups s.report);
  Format.fprintf ppf "@.seeded ground truth:@.";
  List.iter
    (fun ((kb : Pmrace.Target.known_bug), found) ->
      Format.fprintf ppf "  [%s] %a@." (if found then "FOUND" else "MISS") Pmrace.Target.pp_known_bug kb)
    (Fuzzer.found_known_bugs s target);
  if Obs.Metrics.enabled () then begin
    (* Split the headline execs/sec into setup-bound vs run-bound time
       using the campaign phase histograms, so the execution engine's
       reset win (Figure 10) is visible in every session footer. *)
    let hist_sum name =
      List.fold_left
        (fun acc (r : Obs.Metrics.reading) ->
          match r.r_value with
          | Obs.Metrics.Histogram { sum; _ } when String.equal r.r_name name -> acc +. sum
          | _ -> acc)
        0. (Obs.Metrics.snapshot ())
    in
    let counter_sum name =
      List.fold_left
        (fun acc (r : Obs.Metrics.reading) ->
          match r.r_value with
          | Obs.Metrics.Counter n when String.equal r.r_name name -> acc + n
          | _ -> acc)
        0 (Obs.Metrics.snapshot ())
    in
    let setup = hist_sum "campaign_setup_seconds"
    and run = hist_sum "campaign_run_seconds"
    and merge = hist_sum "hub_merge_seconds" in
    if setup +. run > 0. then begin
      let pct x = 100. *. x /. Float.max 1e-9 s.wall_time in
      Format.fprintf ppf
        "@.campaign phases: setup %.3fs (%.1f%%), run %.3fs (%.1f%%), hub merge %.3fs (%.1f%%)@."
        setup (pct setup) run (pct run) merge (pct merge);
      Format.fprintf ppf
        "execs/sec: %.0f setup-bound ceiling, %.0f run-bound (excluding setup)@."
        (float_of_int s.campaigns_run /. Float.max 1e-9 setup)
        (float_of_int s.campaigns_run /. Float.max 1e-9 (s.wall_time -. setup))
    end;
    (* Scheduler hot-path throughput: total scheduling decisions over the
       in-campaign run time.  This is the number the PR-5 hot-path work
       moves; BENCH_hotpath.json has the isolated microbench. *)
    let sched_steps = counter_sum "sched_steps_total" in
    if sched_steps > 0 && run > 0. then
      Format.fprintf ppf "scheduler: %d steps, %.0f steps/sec of campaign run time@."
        sched_steps
        (float_of_int sched_steps /. run);
    Format.fprintf ppf "@.metrics:@.";
    Obs.Metrics.pp ppf ()
  end

let target_conv =
  let parse name =
    match Workloads.Registry.find name with
    | Some t -> Ok t
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown target %S (available: %s)" name
               (String.concat ", " (Workloads.Registry.names ()))))
  in
  Arg.conv (parse, fun ppf (t : Pmrace.Target.t) -> Format.fprintf ppf "%s" t.name)

let mode_conv =
  Arg.enum [ ("pmrace", Fuzzer.Mode_pmrace); ("delay", Fuzzer.Mode_delay); ("random", Fuzzer.Mode_random) ]

let fuzz_cmd =
  let target =
    Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET" ~doc:"Target to fuzz.")
  in
  let campaigns =
    Arg.(value & opt int 300 & info [ "campaigns"; "n" ] ~doc:"Number of fuzz campaigns.")
  in
  let seed = Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Master random seed.") in
  let workers =
    Arg.(value & opt int 1
         & info [ "workers"; "j" ]
             ~doc:
               "Number of fuzzing worker domains sharing coverage (§5). With 1 the session is \
                bit-reproducible; with more, the unique-bug set is deterministic but campaign \
                order is not.")
  in
  let mode =
    Arg.(value & opt mode_conv Fuzzer.Mode_pmrace
         & info [ "mode" ] ~doc:"Exploration mode: pmrace, delay, or random.")
  in
  let no_checkpoint =
    Arg.(value & flag & info [ "no-checkpoint" ] ~doc:"Disable in-memory pool checkpoints.")
  in
  let no_validate =
    Arg.(value & flag & info [ "no-validate" ] ~doc:"Skip post-failure validation.")
  in
  let no_ie = Arg.(value & flag & info [ "no-ie" ] ~doc:"Disable the interleaving tier.") in
  let no_se = Arg.(value & flag & info [ "no-se" ] ~doc:"Disable the seed tier.") in
  let no_static =
    Arg.(value & flag
         & info [ "no-static" ]
             ~doc:"Skip the static pre-pass (alias-pair denominator, lint, seed prioritisation).")
  in
  let invariants =
    Arg.(value & flag
         & info [ "invariants" ]
             ~doc:
               "Mine likely persistence-ordering invariants in the pre-pass and monitor every \
                campaign for violations (validated post-failure like other candidates).")
  in
  let corpus_sched =
    Arg.(value & flag
         & info [ "corpus-sched" ]
             ~doc:
               "AFL-style corpus scheduling: draw mutation parents from the favored cover of the \
                achieved alias-pair set (recomputed each generation) instead of uniformly from \
                the corpus.")
  in
  let crash_images =
    Arg.(value & opt int 1
         & info [ "crash-images" ] ~docv:"N"
             ~doc:
               "Validate each candidate against up to $(docv) systematically enumerated crash \
                images (per-cacheline drain subsets constrained by fence order) instead of only \
                the single captured image. A candidate is a bug if any enumerated image survives \
                recovery; the artifact records which image index reproduced. Default 1 = the \
                historical single-image behaviour.")
  in
  let por =
    Arg.(value & flag
         & info [ "por" ]
             ~doc:
               "Partial-order reduction: prune scheduler picks that merely commute with the last \
                step (per-fiber sleep sets over instruction footprints) and skip post-failure \
                validation of campaigns whose canonical trace was already explored. The bug set \
                on the planted workloads is unchanged; redundant schedules cost less. Off by \
                default — without it, sessions are bit-identical to previous releases.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log campaign progress.") in
  let report =
    Arg.(value & flag & info [ "report" ] ~doc:"Print detailed bug reports with reproduction inputs.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:
               "Write the session artifact (config, coverage, timeline, bug groups, per-campaign \
                provenance, metrics) as versioned JSON. $(b,pmrace replay) consumes it.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Stream structured session events (campaign boundaries, new alias pairs, \
                   candidates, verdicts) as JSON Lines.")
  in
  let no_metrics =
    Arg.(value & flag
         & info [ "no-metrics" ]
             ~doc:"Disable metrics collection (the default hot-path cost is one atomic load).")
  in
  let run target campaigns seed workers mode no_checkpoint no_validate no_ie no_se no_static
      invariants corpus_sched crash_images por verbose report json_out trace_out no_metrics =
    Obs.Metrics.set_enabled (not no_metrics);
    Obs.Metrics.reset ();
    let cfg =
      Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:seed ~workers ~mode
        ~use_checkpoint:((not no_checkpoint) && target.Pmrace.Target.expensive_init)
        ~validate:(not no_validate) ~interleaving_tier:(not no_ie) ~seed_tier:(not no_se)
        ~static_prepass:(not no_static) ~invariants ~corpus_sched ~crash_images ~por ()
    in
    let log = if verbose then fun m -> Format.eprintf "%s@." m else fun _ -> () in
    let obs, trace_oc =
      match trace_out with
      | None -> (None, None)
      | Some path ->
          let o = Obs.Events.create () in
          let oc = open_out path in
          Obs.Events.attach_jsonl o oc;
          (Some o, Some oc)
    in
    let s = Fuzzer.run ~log ?obs target cfg in
    Option.iter close_out trace_oc;
    print_session Format.std_formatter target s;
    (match json_out with
    | Some path ->
        Pmrace.Artifact.write ~path (Pmrace.Artifact.of_session ~target ~cfg s);
        Format.printf "@.session artifact written to %s@." path
    | None -> ());
    if report then begin
      Format.printf "@.=== detailed bug reports ===@.";
      Pmrace.Bug_report.render_bugs Format.std_formatter s
    end
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Fuzz a PM system for concurrency bugs")
    Term.(
      const run $ target $ campaigns $ seed $ workers $ mode $ no_checkpoint $ no_validate $ no_ie
      $ no_se $ no_static $ invariants $ corpus_sched $ crash_images $ por $ verbose $ report
      $ json_out $ trace_out $ no_metrics)

let replay_cmd =
  let target =
    Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET" ~doc:"Target to replay.")
  in
  let from =
    Arg.(required & opt (some string) None
         & info [ "from" ] ~docv:"SESSION.json"
             ~doc:"Session artifact written by $(b,pmrace fuzz --json-out).")
  in
  let bug =
    Arg.(value & opt int 0 & info [ "bug" ] ~doc:"Bug group index in the artifact (default 0).")
  in
  let run (target : Pmrace.Target.t) from bug =
    match Pmrace.Artifact.read ~path:from with
    | Error e ->
        Format.eprintf "cannot read %s: %s@." from e;
        exit 2
    | Ok artifact -> (
        match Pmrace.Replay.replay_bug ~target ~artifact ~bug with
        | Error e ->
            Format.eprintf "replay failed: %s@." e;
            exit 2
        | Ok o ->
            Format.printf "replayed campaign %d for bug #%d (%s at %s)@." o.r_campaign bug
              o.r_bug.Pmrace.Artifact.b_kind o.r_bug.Pmrace.Artifact.b_site;
            List.iter
              (fun g -> Format.printf "  %a@." Report.pp_bug_group g)
              o.Pmrace.Replay.r_groups;
            if o.Pmrace.Replay.r_reproduced then begin
              Format.printf "bug fingerprint REPRODUCED@.";
              match o.Pmrace.Replay.r_image_index with
              | Some i when i > 0 ->
                  Format.printf "reproduced on enumerated crash image #%d (recorded: %s)@." i
                    (match o.r_bug.Pmrace.Artifact.b_image_index with
                    | Some r -> string_of_int r
                    | None -> "none")
              | Some _ | None -> ()
            end
            else begin
              Format.printf "bug fingerprint NOT reproduced@.";
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-execute one recorded campaign and check the bug reappears")
    Term.(const run $ target $ from $ bug)

let analyze_cmd =
  let target =
    Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET" ~doc:"Target to analyse.")
  in
  let seeds =
    Arg.(value & opt int Pmrace.Analyze.default_config.Pmrace.Analyze.seeds
         & info [ "seeds" ] ~doc:"Number of seed executions to record and analyse.")
  in
  let master_seed =
    Arg.(value & opt int Pmrace.Analyze.default_config.Pmrace.Analyze.master_seed
         & info [ "seed" ] ~doc:"Master random seed for the recorded executions.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit with a nonzero status when the lint pass has $(i,any) finding \
                   (equivalent to $(b,--fail-on low)).")
  in
  let fail_on =
    let sev_conv =
      Arg.enum
        [ ("high", Analysis.Lint.High); ("medium", Analysis.Lint.Medium); ("low", Analysis.Lint.Low) ]
    in
    Arg.(value
         & opt ~vopt:(Some Analysis.Lint.Medium) (some sev_conv) None
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:
               "Exit with a nonzero status when any finding has this severity or worse \
                (high, medium, or low; plain $(b,--fail-on) means medium).  The CI gate uses \
                this, so Low-severity performance lints never flap the build.")
  in
  let basic =
    Arg.(value & flag
         & info [ "basic" ]
             ~doc:"Run only the four first-generation lint rules: no taxonomy detectors, no \
                   invariant mining, no recovery replay.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the full finding reports.") in
  let run (target : Pmrace.Target.t) seeds master_seed strict fail_on basic verbose =
    let base = if basic then Pmrace.Analyze.default_config else Pmrace.Analyze.full_config in
    let cfg = { base with Pmrace.Analyze.seeds; master_seed } in
    let r = Pmrace.Analyze.run ~cfg target in
    Format.printf "== %s: offline persistency analysis over %d executions ==@." target.name
      r.Analysis.Analyzer.r_executions;
    Analysis.Analyzer.pp_report Format.std_formatter r;
    if verbose && r.Analysis.Analyzer.r_findings <> [] then begin
      Format.printf "@.=== detailed lint reports ===@.";
      Pmrace.Bug_report.render_lint Format.std_formatter r.Analysis.Analyzer.r_findings
    end;
    let threshold = if strict then Some Analysis.Lint.Low else fail_on in
    match threshold with
    | None -> ()
    | Some sev ->
        let rank = Analysis.Lint.severity_rank sev in
        let failing =
          List.filter
            (fun (f : Analysis.Lint.finding) -> Analysis.Lint.severity_rank f.f_severity <= rank)
            r.Analysis.Analyzer.r_findings
        in
        if failing <> [] then begin
          Format.printf "@.%d finding(s) at or above the %a gate@." (List.length failing)
            Analysis.Lint.pp_severity sev;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Offline persistency analysis: site graph, alias-pair denominator, lint and taxonomy \
          detectors, likely-invariant mining")
    Term.(const run $ target $ seeds $ master_seed $ strict $ fail_on $ basic $ verbose)

let list_cmd =
  let run () =
    List.iter
      (fun (t : Pmrace.Target.t) ->
        Format.printf "%-16s %-10s %-24s %s@." t.name t.version t.scope t.concurrency)
      Workloads.Registry.with_examples
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available targets") Term.(const run $ const ())

let inspect_cmd =
  let target =
    Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET" ~doc:"Target.")
  in
  let run (target : Pmrace.Target.t) =
    Format.printf "%s (%s) — %s, %s@." target.name target.version target.scope target.concurrency;
    Format.printf "pool: %d words; init: %s@." target.pool_words
      (if target.expensive_init then "libpmemobj-style (expensive)" else "libpmem mapping (cheap)");
    Format.printf "default whitelist: %a@." Fmt.(list ~sep:comma string) target.whitelist_sites;
    Format.printf "seeded bugs:@.";
    List.iter (fun kb -> Format.printf "  %a@." Pmrace.Target.pp_known_bug kb) target.known_bugs
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Show a target's seeded ground truth") Term.(const run $ target)

let hub_cmd =
  let store_dir =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:
               "Durable store directory (created if absent).  Restarting a hub on the same \
                directory resumes its budget ledger, aggregate coverage, bug set and corpus.")
  in
  let target =
    Arg.(required & opt (some target_conv) None
         & info [ "target" ] ~docv:"TARGET" ~doc:"Target this hub serves; worker mismatches are refused.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on (default $(i,DIR)/hub.sock).")
  in
  let budget =
    Arg.(value & opt int 300
         & info [ "budget"; "n" ]
             ~doc:"Total campaign budget across all workers and hub restarts.")
  in
  let campaigns_per_lease =
    Arg.(value & opt int 30
         & info [ "campaigns-per-lease" ] ~doc:"Campaign-grant cap per lease request.")
  in
  let seeds_per_lease =
    Arg.(value & opt int 4
         & info [ "seeds-per-lease" ] ~doc:"Favored corpus seeds handed out per lease.")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log attach/lease/delta traffic.") in
  let run store_dir (target : Pmrace.Target.t) socket budget campaigns_per_lease seeds_per_lease
      verbose =
    let socket_path =
      match socket with Some p -> p | None -> Filename.concat store_dir "hub.sock"
    in
    let log = if verbose then fun m -> Format.eprintf "%s@." m else fun _ -> () in
    let cfg =
      {
        Fleet.Coordinator.default_config with
        Fleet.Coordinator.socket_path;
        store_dir;
        target = target.Pmrace.Target.name;
        budget;
        campaigns_per_lease;
        seeds_per_lease;
        log;
      }
    in
    match Fleet.Coordinator.serve cfg with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 2
    | Ok st ->
        Format.printf "hub drained: %d campaigns, %d unique bugs, %d workers served@."
          st.Fleet.Coordinator.st_campaigns st.st_bugs st.st_clients
  in
  Cmd.v
    (Cmd.info "hub"
       ~doc:
         "Run a fleet coordinator: a durable corpus/coverage hub that leases campaign budget to \
          $(b,pmrace worker) processes")
    Term.(
      const run $ store_dir $ target $ socket $ budget $ campaigns_per_lease $ seeds_per_lease
      $ verbose)

let worker_cmd =
  let target =
    Arg.(required & pos 0 (some target_conv) None & info [] ~docv:"TARGET" ~doc:"Target to fuzz.")
  in
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"PATH" ~doc:"The hub's Unix-domain socket.")
  in
  let seed = Arg.(value & opt int 5 & info [ "seed" ] ~doc:"Master random seed (the worker's \
                                                            streams also mix in its hub-assigned \
                                                            index).")
  in
  let max_campaigns =
    Arg.(value & opt (some int) None
         & info [ "max-campaigns" ] ~docv:"N"
             ~doc:"Detach after N local campaigns even if budget remains (the hub reclaims the \
                   rest of the lease).")
  in
  let no_static =
    Arg.(value & flag & info [ "no-static" ] ~doc:"Skip the static pre-pass.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:"Write this worker's local session shard as an artifact; combine shards with \
                   $(b,pmrace merge).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log campaign progress.") in
  let run (target : Pmrace.Target.t) connect seed max_campaigns no_static json_out verbose =
    let log = if verbose then fun m -> Format.eprintf "%s@." m else fun _ -> () in
    let cfg =
      Fuzzer.Config.make ~master_seed:seed
        ~use_checkpoint:target.Pmrace.Target.expensive_init
        ~static_prepass:(not no_static) ()
    in
    let wcfg = { Fleet.Worker.default_config with connect; cfg; max_local = max_campaigns; log } in
    match Fleet.Worker.run wcfg target with
    | Error e ->
        Format.eprintf "%s@." e;
        exit 2
    | Ok o ->
        Format.printf "worker %d: %d campaigns@." o.Fleet.Worker.o_widx o.o_campaigns;
        print_session Format.std_formatter target o.o_session;
        (match json_out with
        | Some path ->
            Pmrace.Artifact.write ~path (Pmrace.Artifact.of_session ~target ~cfg o.o_session);
            Format.printf "@.shard artifact written to %s@." path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "worker" ~doc:"Run one fleet fuzzing worker attached to a $(b,pmrace hub)")
    Term.(const run $ target $ connect $ seed $ max_campaigns $ no_static $ json_out $ verbose)

let merge_cmd =
  let inputs =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"SHARD.json" ~doc:"Session artifacts of the same target.")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"OUT.json" ~doc:"Merged artifact path.")
  in
  let run inputs out =
    let shards =
      List.map
        (fun path ->
          match Pmrace.Artifact.read ~path with
          | Error e ->
              Format.eprintf "cannot read %s: %s@." path e;
              exit 2
          | Ok a -> (Filename.basename path, a))
        inputs
    in
    match Pmrace.Artifact.merge shards with
    | Error e ->
        Format.eprintf "merge failed: %s@." e;
        exit 2
    | Ok merged ->
        Pmrace.Artifact.write ~path:out merged;
        Format.printf "merged %d shards: %d campaigns, %d unique bugs, %d site pairs -> %s@."
          (List.length shards) merged.Pmrace.Artifact.a_campaigns
          (List.length merged.Pmrace.Artifact.a_bugs)
          (List.length merged.Pmrace.Artifact.a_site_pairs)
          out
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Union session artifacts of one target into a single artifact with per-origin \
          provenance; campaign indices are re-based so $(b,pmrace replay) still works")
    Term.(const run $ inputs $ out)

let () =
  let doc = "PMRace: PM-aware coverage-guided fuzzing for persistent-memory concurrency bugs" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "pmrace" ~doc)
          [ fuzz_cmd; replay_cmd; analyze_cmd; list_cmd; inspect_cmd; hub_cmd; worker_cmd; merge_cmd ]))
